//===- tests/indexd_test.cpp - indexd fault-injection harness ---------------===//
///
/// \file
/// The serving daemon under attack. Three layers:
///
///  - **Generation swap, library level**: reader threads hammer
///    `lookupBatch`-style queries through `GenerationCell::acquire`
///    while a swapper republishes generations as fast as it can -- zero
///    wrong answers, and the destruction counter proves every displaced
///    generation's mapping was actually released (not leaked, not
///    unmapped early). This is the refcounting contract the whole
///    daemon's correctness rests on.
///
///  - **Wire protocol, in-process daemon**: a real `serve::Server` on a
///    real Unix socket, queried by `serve::Client` -- answers must be
///    byte-identical to the `MappedIndex` ground truth; reloads
///    mid-traffic must never produce a wrong or torn answer; a corrupt
///    reload candidate must be rejected while the old generation keeps
///    serving; concurrent reload hammering must stay linearizable.
///
///  - **Hostile clients**: the full `runChaos` script (torn frames,
///    slow-loris, oversized/short/garbage/bad-version/bad-op frames,
///    mid-frame hangups, pipelined floods) -- every offence gets the
///    documented error status, the connection is closed, and the daemon
///    keeps serving. Plus lifecycle: graceful drain exits 0 and unlinks
///    the socket; a daemon killed and restarted over its own stale
///    socket file comes back serving.
///
/// Timeouts here are intentionally short (hundreds of ms) so the suite
/// runs fast, with assertions phrased against *events* (reply received,
/// connection closed) rather than wall-clock, keeping it sanitizer- and
/// load-tolerant.
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Generation.h"
#include "serve/Server.h"

#include "ast/Serialize.h"
#include "gen/RandomExpr.h"
#include "index/AlphaHashIndex.h"
#include "index/IndexIO.h"
#include "index/MappedIndex.h"
#include "index/SegmentCompactor.h"
#include "index/SegmentManifest.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <unistd.h>
#endif

using namespace hma;
using namespace hma::serve;

#if !defined(__unix__) && !defined(__APPLE__)
TEST(Indexd, SkippedOnThisPlatform) { GTEST_SKIP() << "no sockets"; }
#else

namespace {

std::vector<std::string> makeCorpus(size_t N, uint64_t Seed,
                                    uint32_t Size = 25) {
  ExprContext Ctx;
  Rng R(Seed);
  std::vector<std::string> Blobs;
  for (size_t I = 0; I != N; ++I)
    Blobs.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, Size)));
  return Blobs;
}

/// Ingest \p Corpus and persist it as an HMAI file at \p Path.
void writeIndexFileFor(const std::vector<std::string> &Corpus,
                       const std::string &Path, unsigned Shards = 16) {
  AlphaHashIndex<> Live({Shards, HashSchema::DefaultSeed});
  Live.insertBatch(Corpus, /*Threads=*/1);
  std::string Error;
  ASSERT_TRUE(writeFileReplacing(Path, saveIndexBytes(Live), &Error))
      << Error;
}

/// Aggressive-but-stable daemon options for tests: short deadlines,
/// tiny drain bound, 2 workers.
ServerOptions testOpts(const std::string &IndexPath,
                       const std::string &Sock) {
  ServerOptions O;
  O.IndexPath = IndexPath;
  O.UnixSocketPath = Sock;
  O.Threads = 2;
  O.RequestTimeoutMs = 400;
  O.IdleTimeoutMs = 10000;
  O.DrainTimeoutMs = 2000;
  return O;
}

ClientOptions testClientOpts(const std::string &Sock) {
  ClientOptions O;
  O.UnixSocketPath = Sock;
  O.TimeoutMs = 10000;
  O.ConnectRetries = 5;
  O.RetryBaseMs = 20;
  return O;
}

/// Start a daemon or fail the test; stops it on scope exit even when an
/// assertion bails out early.
struct DaemonGuard {
  Server Srv;
  explicit DaemonGuard(ServerOptions O) : Srv(std::move(O)) {
    std::string Error;
    Started = Srv.start(&Error);
    EXPECT_TRUE(Started) << Error;
  }
  ~DaemonGuard() {
    if (Started) {
      Srv.requestStop();
      Srv.waitForExit();
    }
  }
  bool Started = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Layer 1: refcounted generation swap, library level
//===----------------------------------------------------------------------===//

TEST(GenerationSwap, ConcurrentReadersNeverSeeWrongAnswersAcross100Swaps) {
  // Two index files over the same corpus (B is a superset), swapped
  // back and forth under the readers' feet. Every corpus member must
  // answer present-with-identical-bytes from *either* generation, so a
  // reader can never tell mid-swap chaos from a quiet server -- except
  // by crashing, which is the bug this test exists to catch.
  std::vector<std::string> Corpus = makeCorpus(60, 0xA11CE);
  std::vector<std::string> Superset = Corpus;
  for (std::string &B : makeCorpus(20, 0xB0B))
    Superset.push_back(std::move(B));
  const std::string PathA = "indexd_test_gen_a.hmai";
  const std::string PathB = "indexd_test_gen_b.hmai";
  writeIndexFileFor(Corpus, PathA);
  writeIndexFileFor(Superset, PathB);

  // Ground truth from a private mapping of file A.
  auto Truth = MappedIndex<Hash128>::open(PathA);
  ASSERT_TRUE(Truth.ok()) << Truth.Error;
  std::vector<std::optional<LookupResult<Hash128>>> Expect =
      Truth.Reader->lookupBatch(Corpus, /*Threads=*/1);

  GenerationCell Cell;
  ASSERT_TRUE(Cell.load(PathA).Ok);

  constexpr int Swaps = 100;
  constexpr int Readers = 8;
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Checked{0};
  std::atomic<int> WrongAnswers{0};

  std::vector<std::thread> Threads;
  for (int T = 0; T != Readers; ++T) {
    Threads.emplace_back([&, T] {
      // Per-reader warm hasher + scratch, the worker pattern.
      ExprContext Boot;
      AlphaHasher<Hash128> Hasher(Boot);
      DecodeScratch Scratch;
      size_t I = static_cast<size_t>(T);
      while (!Done.load(std::memory_order_acquire)) {
        GenerationRef Gen = Cell.acquire();
        ASSERT_NE(Gen, nullptr);
        const std::string &Blob = Corpus[I % Corpus.size()];
        ExprContext Ctx;
        DeserializeResult D = deserializeExpr(Ctx, Blob);
        ASSERT_TRUE(D.ok());
        auto Hit = Gen->lookup(Ctx, D.E, Hasher, Scratch);
        const auto &Want = Expect[I % Corpus.size()];
        if (!Hit || !Want || Hit->Hash != Want->Hash ||
            Hit->Count != Want->Count ||
            Hit->CanonicalBytes != Want->CanonicalBytes)
          WrongAnswers.fetch_add(1);
        Hasher.rebind(Boot); // Ctx dies now; never dangle into it.
        Checked.fetch_add(1);
        ++I;
      }
    });
  }

  // Thread startup can lag far behind this thread (sanitizers, 1-core
  // boxes): don't start -- or stop -- swapping until the readers are
  // demonstrably in their loops, or the "concurrent" in the test name
  // would be vacuous. Bounded waits so a crashed reader fails instead
  // of hanging.
  auto WaitChecked = [&](uint64_t AtLeast) {
    for (int Spin = 0; Spin != 20000 && Checked.load() < AtLeast; ++Spin)
      std::this_thread::sleep_for(std::chrono::microseconds(250));
  };
  WaitChecked(1);
  int Ok = 0;
  for (int S = 0; S != Swaps; ++S)
    Ok += Cell.load(S % 2 ? PathB : PathA).Ok;
  WaitChecked(static_cast<uint64_t>(Readers));
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Ok, Swaps);
  EXPECT_EQ(WrongAnswers.load(), 0);
  EXPECT_GT(Checked.load(), 0u);
  // 1 initial + 100 swapped generations; with every reader drained the
  // cell's own reference is the only one left, so exactly 100 displaced
  // generations must have been destroyed -- no leak, no double-free
  // (ASan would flag the latter).
  EXPECT_EQ(Cell.generationsRetired(), static_cast<uint64_t>(Swaps));
  Cell.clear();
  EXPECT_EQ(Cell.generationsRetired(), static_cast<uint64_t>(Swaps) + 1);

  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

TEST(GenerationSwap, PinnedReferenceOutlivesCellAndSwaps) {
  std::vector<std::string> Corpus = makeCorpus(10, 77);
  const std::string Path = "indexd_test_gen_pin.hmai";
  writeIndexFileFor(Corpus, Path);

  GenerationRef Pinned;
  uint64_t RetiredAtPin = 0;
  {
    GenerationCell Cell;
    ASSERT_TRUE(Cell.load(Path).Ok);
    Pinned = Cell.acquire();
    ASSERT_NE(Pinned, nullptr);
    EXPECT_EQ(Pinned->Number, 1u);
    // Two swaps displace the pinned generation, but the pin keeps its
    // mapping alive: only the *middle* generation can retire.
    ASSERT_TRUE(Cell.load(Path).Ok);
    ASSERT_TRUE(Cell.load(Path).Ok);
    EXPECT_EQ(Cell.currentNumber(), 3u);
    EXPECT_EQ(Cell.generationsRetired(), 1u);
    RetiredAtPin = Cell.generationsRetired();
    // Cell destruction drops generation 3; the pin still holds 1.
  }
  // The pinned generation must still answer after the cell is gone.
  ExprContext Ctx;
  DeserializeResult D = deserializeExpr(Ctx, Corpus[0]);
  ASSERT_TRUE(D.ok());
  EXPECT_TRUE(Pinned->Index->lookup(Ctx, D.E).has_value());
  (void)RetiredAtPin;
  Pinned.reset(); // The deleter outlives the cell by design.
  std::remove(Path.c_str());
}

TEST(GenerationSwap, AdmissionGateRejectsCorruptionWithoutDisturbingService) {
  std::vector<std::string> Corpus = makeCorpus(20, 5);
  const std::string Good = "indexd_test_gate_good.hmai";
  const std::string Bad = "indexd_test_gate_bad.hmai";
  writeIndexFileFor(Corpus, Good);

  GenerationCell Cell;
  ASSERT_TRUE(Cell.load(Good).Ok);

  // Magic-smashed, truncated, and bit-flipped candidates: all rejected,
  // generation number and serving pointer untouched.
  std::string Image;
  {
    std::string Error;
    ASSERT_TRUE(readFileBytes(Good, Image, &Error)) << Error;
  }
  std::string Smashed = Image;
  Smashed[0] = 'X';
  std::string Truncated = Image.substr(0, Image.size() / 2);
  std::string Flipped = Image;
  Flipped[Image.size() / 2] ^= 0x40;

  for (const std::string &Candidate : {Smashed, Truncated, Flipped}) {
    std::string Error;
    ASSERT_TRUE(writeFileReplacing(Bad, Candidate, &Error)) << Error;
    LoadOutcome R = Cell.load(Bad);
    // (The bit-flip lands in blob bytes for some sizes, which decode
    // checks catch in verify(); all three candidates here corrupt
    // structure the gate detects. If a candidate ever passes, it must
    // at least be *openable* -- treat that as gate acceptance.)
    if (!R.Ok) {
      EXPECT_NE(R.Message.find("rejected"), std::string::npos) << R.Message;
      EXPECT_EQ(Cell.currentPath(), Good);
    }
  }
  EXPECT_GE(Cell.loadsRejected(), 2u);

  std::remove(Good.c_str());
  std::remove(Bad.c_str());
}

//===----------------------------------------------------------------------===//
// Layer 2: the daemon over its socket vs MappedIndex ground truth
//===----------------------------------------------------------------------===//

TEST(Indexd, WireAnswersAreByteIdenticalToMappedGroundTruth) {
  std::vector<std::string> Corpus = makeCorpus(80, 42);
  const std::string Path = "indexd_test_wire.hmai";
  const std::string Sock = "indexd_test_wire.sock";
  writeIndexFileFor(Corpus, Path);

  // Queries: every member, plus guaranteed-absent and undecodable ones.
  std::vector<std::string> Queries = Corpus;
  for (std::string &B : makeCorpus(10, 0xDEAD, 31))
    Queries.push_back(std::move(B));
  Queries.push_back("definitely not a serialized expression");
  Queries.emplace_back(); // empty blob

  auto Truth = MappedIndex<Hash128>::open(Path);
  ASSERT_TRUE(Truth.ok()) << Truth.Error;
  auto Expect = Truth.Reader->lookupBatch(Queries, /*Threads=*/1);

  DaemonGuard D(testOpts(Path, Sock));
  ASSERT_TRUE(D.Started);

  Client C(testClientOpts(Sock));
  std::string Error;

  // Batch op: one frame, every answer byte-compared.
  std::vector<WireLookup> Got;
  ASSERT_TRUE(C.lookupBatch(Queries, Got, &Error)) << Error;
  ASSERT_EQ(Got.size(), Expect.size());
  for (size_t I = 0; I != Got.size(); ++I) {
    ASSERT_EQ(Got[I].Present, Expect[I].has_value()) << "query " << I;
    if (!Got[I].Present)
      continue;
    EXPECT_EQ(Got[I].Hash, Expect[I]->Hash) << "query " << I;
    EXPECT_EQ(Got[I].Count, Expect[I]->Count) << "query " << I;
    EXPECT_EQ(Got[I].CanonicalBytes,
              std::string(Expect[I]->CanonicalBytes))
        << "query " << I;
  }

  // Singleton op: same contract, one query per frame, pipelined client
  // reuse of one connection.
  for (size_t I = 0; I < Queries.size(); I += 7) {
    WireLookup R;
    ASSERT_TRUE(C.lookup(Queries[I], R, &Error)) << Error;
    EXPECT_EQ(R.Present, Expect[I].has_value()) << "query " << I;
    if (R.Present && Expect[I]) {
      EXPECT_EQ(R.Hash, Expect[I]->Hash);
    }
  }

  // Stats op: all three formats answer, and the text form carries the
  // generation fields the harness asserts on elsewhere.
  std::string Report;
  ASSERT_TRUE(C.stats(StatsFormat::Text, Report, &Error)) << Error;
  EXPECT_NE(Report.find("generation: 1"), std::string::npos) << Report;
  EXPECT_NE(Report.find("backend: mapped"), std::string::npos) << Report;
  ASSERT_TRUE(C.stats(StatsFormat::Json, Report, &Error)) << Error;
  EXPECT_NE(Report.find("\"backend\""), std::string::npos);
  ASSERT_TRUE(C.stats(StatsFormat::Prom, Report, &Error)) << Error;
  EXPECT_NE(Report.find("hma_index_classes"), std::string::npos);

  std::remove(Path.c_str());
}

TEST(Indexd, ReloadUnderFireNeverProducesAWrongAnswer) {
  std::vector<std::string> Corpus = makeCorpus(40, 9);
  const std::string Path = "indexd_test_fire.hmai";
  const std::string Sock = "indexd_test_fire.sock";
  writeIndexFileFor(Corpus, Path);

  auto Truth = MappedIndex<Hash128>::open(Path);
  ASSERT_TRUE(Truth.ok()) << Truth.Error;
  auto Expect = Truth.Reader->lookupBatch(Corpus, 1);

  DaemonGuard D(testOpts(Path, Sock));
  ASSERT_TRUE(D.Started);

  std::atomic<bool> Done{false};
  std::atomic<int> Wrong{0};
  std::atomic<int> TransportErrors{0};
  std::thread Querier([&] {
    Client C(testClientOpts(Sock));
    std::string Error;
    size_t I = 0;
    while (!Done.load()) {
      WireLookup R;
      if (!C.lookup(Corpus[I % Corpus.size()], R, &Error)) {
        TransportErrors.fetch_add(1);
        continue;
      }
      const auto &Want = Expect[I % Corpus.size()];
      if (!R.Present || !Want || R.Hash != Want->Hash ||
          R.CanonicalBytes != std::string(Want->CanonicalBytes))
        Wrong.fetch_add(1);
      ++I;
    }
  });

  // 20 mid-traffic reloads of the same file: every one admitted, every
  // displaced generation eventually retired.
  Client Reloader(testClientOpts(Sock));
  std::string Error;
  int ReloadsOk = 0;
  for (int I = 0; I != 20; ++I) {
    Reply R;
    ASSERT_TRUE(Reloader.reload("", R, &Error)) << Error;
    ReloadsOk += R.ok();
  }
  Done.store(true);
  Querier.join();

  EXPECT_EQ(ReloadsOk, 20);
  EXPECT_EQ(Wrong.load(), 0);
  EXPECT_EQ(TransportErrors.load(), 0);
  EXPECT_EQ(D.Srv.generations().currentNumber(), 21u);
  // In-flight pins have drained (both clients are idle): of the 21
  // generations, only the current one may still be alive.
  EXPECT_EQ(D.Srv.generations().generationsRetired(), 20u);

  std::remove(Path.c_str());
}

TEST(Indexd, CorruptReloadIsRejectedWhileOldGenerationKeepsServing) {
  std::vector<std::string> Corpus = makeCorpus(30, 3);
  const std::string Path = "indexd_test_corrupt.hmai";
  const std::string Bad = "indexd_test_corrupt_bad.hmai";
  const std::string Sock = "indexd_test_corrupt.sock";
  writeIndexFileFor(Corpus, Path);
  {
    std::string Error;
    ASSERT_TRUE(
        writeFileReplacing(Bad, "HMAI but not really an index", &Error))
        << Error;
  }

  DaemonGuard D(testOpts(Path, Sock));
  ASSERT_TRUE(D.Started);
  Client C(testClientOpts(Sock));
  std::string Error;

  WireLookup Before;
  ASSERT_TRUE(C.lookup(Corpus[0], Before, &Error)) << Error;
  ASSERT_TRUE(Before.Present);

  Reply R;
  ASSERT_TRUE(C.reload(Bad, R, &Error)) << Error;
  EXPECT_EQ(R.S, Status::ReloadRejected) << statusName(R.S);
  EXPECT_NE(R.Body.find("rejected"), std::string::npos) << R.Body;

  // Same connection, same generation, same answer.
  WireLookup After;
  ASSERT_TRUE(C.lookup(Corpus[0], After, &Error)) << Error;
  EXPECT_TRUE(After.Present);
  EXPECT_EQ(After.Hash, Before.Hash);
  EXPECT_EQ(After.CanonicalBytes, Before.CanonicalBytes);
  EXPECT_EQ(D.Srv.generations().currentNumber(), 1u);
  EXPECT_GE(D.Srv.generations().loadsRejected(), 1u);

  std::remove(Path.c_str());
  std::remove(Bad.c_str());
}

TEST(Indexd, ConcurrentReloadHammerStaysLinearizable) {
  std::vector<std::string> Corpus = makeCorpus(30, 11);
  const std::string Path = "indexd_test_hammer.hmai";
  const std::string Sock = "indexd_test_hammer.sock";
  writeIndexFileFor(Corpus, Path);

  DaemonGuard D(testOpts(Path, Sock));
  ASSERT_TRUE(D.Started);

  constexpr int Hammers = 4;
  constexpr int ReloadsEach = 10;
  std::atomic<int> Admitted{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != Hammers; ++T) {
    Threads.emplace_back([&] {
      Client C(testClientOpts(Sock));
      std::string Error;
      for (int I = 0; I != ReloadsEach; ++I) {
        Reply R;
        if (C.reload("", R, &Error) && R.ok())
          Admitted.fetch_add(1);
      }
    });
  }
  // One thread keeps querying throughout.
  std::atomic<bool> Done{false};
  std::atomic<int> Wrong{0};
  std::thread Querier([&] {
    Client C(testClientOpts(Sock));
    std::string Error;
    while (!Done.load()) {
      WireLookup R;
      if (C.lookup(Corpus[7], R, &Error) && !R.Present)
        Wrong.fetch_add(1);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Done.store(true);
  Querier.join();

  EXPECT_EQ(Admitted.load(), Hammers * ReloadsEach);
  EXPECT_EQ(Wrong.load(), 0);
  // Generation numbers are published under one lock: the final number
  // is exactly initial + admitted, monotonic throughout.
  EXPECT_EQ(D.Srv.generations().currentNumber(),
            1u + static_cast<uint64_t>(Admitted.load()));

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Layer 3: hostile clients and lifecycle
//===----------------------------------------------------------------------===//

TEST(Indexd, ChaosSuiteAllModesPass) {
  std::vector<std::string> Corpus = makeCorpus(20, 21);
  const std::string Path = "indexd_test_chaos.hmai";
  const std::string Sock = "indexd_test_chaos.sock";
  writeIndexFileFor(Corpus, Path);

  DaemonGuard D(testOpts(Path, Sock));
  ASSERT_TRUE(D.Started);

  std::string Log;
  int Failures = runChaos(testClientOpts(Sock), "all",
                          /*ServerRequestTimeoutMs=*/400, Log);
  EXPECT_EQ(Failures, 0) << Log;
  EXPECT_NE(Log.find("PASS torn"), std::string::npos) << Log;
  EXPECT_NE(Log.find("PASS flood"), std::string::npos) << Log;

  std::remove(Path.c_str());
}

TEST(Indexd, GracefulShutdownDrainsAndUnlinksSocket) {
  std::vector<std::string> Corpus = makeCorpus(15, 8);
  const std::string Path = "indexd_test_drain.hmai";
  const std::string Sock = "indexd_test_drain.sock";
  writeIndexFileFor(Corpus, Path);

  auto Opts = testOpts(Path, Sock);
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  Client C(testClientOpts(Sock));
  WireLookup R;
  ASSERT_TRUE(C.lookup(Corpus[0], R, &Error)) << Error;
  EXPECT_TRUE(R.Present);

  // The Shutdown *op* drains the daemon: requests already answered stay
  // answered, waitForExit returns the clean exit code, and the socket
  // path is gone afterwards.
  ASSERT_TRUE(C.shutdownServer(&Error)) << Error;
  EXPECT_EQ(Srv.waitForExit(), 0);
  EXPECT_FALSE(Srv.running());

  ClientOptions NoRetry = testClientOpts(Sock);
  NoRetry.ConnectRetries = 1;
  Client C2(NoRetry);
  EXPECT_FALSE(C2.ping(&Error));

  std::remove(Path.c_str());
}

TEST(Indexd, RestartOverStaleSocketFileServesAgain) {
  std::vector<std::string> Corpus = makeCorpus(15, 4);
  const std::string Path = "indexd_test_restart.hmai";
  const std::string Sock = "indexd_test_restart.sock";
  writeIndexFileFor(Corpus, Path);

  // First life: serve, then die *without* graceful cleanup (simulated
  // kill -9: we skip the drain and just leak the socket inode).
  {
    std::string Error;
    ASSERT_TRUE(writeFileReplacing(Sock, "stale socket placeholder", &Error))
        << Error; // Any leftover inode at the path.
  }

  // Second life: must bind over the stale path and serve.
  DaemonGuard D(testOpts(Path, Sock));
  ASSERT_TRUE(D.Started);
  Client C(testClientOpts(Sock));
  std::string Error;
  WireLookup R;
  ASSERT_TRUE(C.lookup(Corpus[3], R, &Error)) << Error;
  EXPECT_TRUE(R.Present);

  std::remove(Path.c_str());
}

TEST(Indexd, RequestsDuringDrainAreAnsweredThenConnectionCloses) {
  std::vector<std::string> Corpus = makeCorpus(15, 6);
  const std::string Path = "indexd_test_drainreq.hmai";
  const std::string Sock = "indexd_test_drainreq.sock";
  writeIndexFileFor(Corpus, Path);

  auto Opts = testOpts(Path, Sock);
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(&Error)) << Error;

  // Client A parks an open connection, then the daemon starts draining.
  Client A(testClientOpts(Sock));
  ASSERT_TRUE(A.ping(&Error)) << Error;
  Srv.requestStop();

  // The drain must complete regardless of A's open connection, inside
  // the drain bound (waitForExit blocks until then).
  EXPECT_EQ(Srv.waitForExit(), 0);

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Layer 4: degraded mode -- a rejected reload never takes the daemon down
//===----------------------------------------------------------------------===//

namespace {

/// Delete every file in \p Dir, then the directory itself (segmented
/// test fixtures; file set varies with compaction timing).
void removeDirTree(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (D) {
    std::vector<std::string> Names;
    while (struct dirent *E = ::readdir(D)) {
      const std::string N = E->d_name;
      if (N != "." && N != "..")
        Names.push_back(N);
    }
    ::closedir(D);
    for (const std::string &N : Names)
      std::remove((Dir + "/" + N).c_str());
  }
  ::rmdir(Dir.c_str());
}

/// Poll \p Pred every millisecond for up to \p BoundMs. True if it held.
template <typename Pred> bool eventually(int BoundMs, Pred &&P) {
  for (int Waited = 0; Waited < BoundMs; ++Waited) {
    if (P())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return P();
}

} // namespace

TEST(Indexd, DegradedModeRetriesRejectedReloadAndRecovers) {
  std::vector<std::string> Corpus = makeCorpus(30, 41);
  std::vector<std::string> NewCorpus = makeCorpus(30, 42);
  const std::string Path = "indexd_test_degraded.hmai";
  const std::string Candidate = "indexd_test_degraded_next.hmai";
  const std::string Sock = "indexd_test_degraded.sock";
  writeIndexFileFor(Corpus, Path);
  {
    std::string Error;
    ASSERT_TRUE(writeFileReplacing(Candidate, "garbage, not an index",
                                   &Error))
        << Error;
  }

  ServerOptions O = testOpts(Path, Sock);
  O.ReloadRetryBaseMs = 5;
  O.ReloadRetryMaxMs = 40;
  O.ReloadRetryLimit = 100000; // keep retrying for the whole test
  DaemonGuard D(O);
  ASSERT_TRUE(D.Started);
  Client C(testClientOpts(Sock));
  std::string Error;

  WireLookup Truth;
  ASSERT_TRUE(C.lookup(Corpus[0], Truth, &Error)) << Error;
  ASSERT_TRUE(Truth.Present);

  // Three consecutive operator reloads of a corrupt candidate: each is
  // rejected, the old generation answers identically after every one.
  for (int I = 0; I != 3; ++I) {
    Reply R;
    ASSERT_TRUE(C.reload(Candidate, R, &Error)) << Error;
    EXPECT_EQ(R.S, Status::ReloadRejected) << statusName(R.S);
    WireLookup Again;
    ASSERT_TRUE(C.lookup(Corpus[0], Again, &Error)) << Error;
    EXPECT_TRUE(Again.Present);
    EXPECT_EQ(Again.Hash, Truth.Hash);
    EXPECT_EQ(Again.CanonicalBytes, Truth.CanonicalBytes);
  }
  EXPECT_TRUE(D.Srv.degraded());
  EXPECT_FALSE(D.Srv.lastReloadError().empty());
  EXPECT_EQ(D.Srv.generations().currentNumber(), 1u);

  // The accept thread keeps retrying the failed candidate on its own
  // (jittered exponential backoff), and the retries keep failing -- the
  // daemon stays degraded but serving.
  EXPECT_TRUE(eventually(5000, [&] { return D.Srv.reloadRetries() >= 2; }))
      << "no automatic retries observed";
  EXPECT_TRUE(D.Srv.degraded());

  // Both stats surfaces show the state.
  std::string Stats;
  ASSERT_TRUE(C.stats(StatsFormat::Text, Stats, &Error)) << Error;
  EXPECT_NE(Stats.find("degraded: 1"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("reload_retries: "), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("last_reload_error: "), std::string::npos) << Stats;
  std::string Prom;
  ASSERT_TRUE(C.stats(StatsFormat::Prom, Prom, &Error)) << Error;
  EXPECT_NE(Prom.find("hma_indexd_degraded"), std::string::npos);
  EXPECT_NE(Prom.find("hma_indexd_reload_retries_total"), std::string::npos);

  // Fix the candidate in place (atomic replace). The next automatic
  // retry passes the admission gate, swaps the generation, and clears
  // the degraded state -- no operator involved.
  writeIndexFileFor(NewCorpus, Candidate);
  EXPECT_TRUE(eventually(5000, [&] { return !D.Srv.degraded(); }))
      << "degraded state never cleared: " << D.Srv.lastReloadError();
  EXPECT_GE(D.Srv.generations().currentNumber(), 2u);
  EXPECT_TRUE(D.Srv.lastReloadError().empty());

  WireLookup FromNew;
  ASSERT_TRUE(C.lookup(NewCorpus[0], FromNew, &Error)) << Error;
  EXPECT_TRUE(FromNew.Present);
  ASSERT_TRUE(C.stats(StatsFormat::Text, Stats, &Error)) << Error;
  EXPECT_NE(Stats.find("degraded: 0"), std::string::npos) << Stats;

  std::remove(Path.c_str());
  std::remove(Candidate.c_str());
}

TEST(Indexd, SighupReloadRacesCompactorManifestSwap) {
  std::vector<std::string> Base = makeCorpus(24, 51);
  const std::string Dir = "indexd_test_race.segidx";
  const std::string Sock = "indexd_test_race.sock";
  removeDirTree(Dir);
  {
    AlphaHashIndex<> BaseIdx({/*Shards=*/8, HashSchema::DefaultSeed});
    BaseIdx.insertBatch(Base, 1);
    ASSERT_TRUE(createSegmentDir(Dir, BaseIdx).Ok);
  }

  ServerOptions O = testOpts(Dir, Sock);
  O.ReloadRetryBaseMs = 2; // a racy rejection must heal itself quickly
  O.ReloadRetryMaxMs = 10;
  O.ReloadRetryLimit = 100000;
  DaemonGuard D(O);
  ASSERT_TRUE(D.Started);
  Client C(testClientOpts(Sock));
  std::string Error;

  std::vector<WireLookup> Truth(Base.size());
  for (size_t I = 0; I != Base.size(); ++I) {
    ASSERT_TRUE(C.lookup(Base[I], Truth[I], &Error)) << Error;
    ASSERT_TRUE(Truth[I].Present);
  }

  auto numSegments = [&] {
    std::string Bytes;
    SegmentManifest M;
    if (!readFileBytes(manifestPathFor(Dir), Bytes, nullptr) ||
        !SegmentManifest::decode(Bytes, M))
      return size_t(0); // mid-swap read; caller just polls again
    return M.Segments.size();
  };

  // A live compactor (poll 1ms, trigger at 2 segments) swaps the
  // manifest out from under SIGHUP reloads. Each round appends one
  // delta -- only ever while a single segment is listed, so the
  // append's read-modify-write cannot interleave with a compaction --
  // then hammers reloads while the compactor merges 2 -> 1. A reload
  // that catches the window where the old manifest's segments are
  // already deleted is *rejected* (and retried); what it must never do
  // is serve a torn view or wrong bytes.
  SegmentCompactor<Hash128>::Options COpts;
  COpts.TriggerSegments = 2;
  COpts.PollMs = 1;
  SegmentCompactor<Hash128> Compactor(Dir, COpts);

  ExprContext Ctx;
  Rng R(99);
  SegmentAppendOptions AOpts;
  AOpts.Shards = 8;
  for (int Round = 0; Round != 12; ++Round) {
    ASSERT_TRUE(eventually(5000, [&] { return numSegments() == 1; }))
        << "compactor never quiesced: " << Compactor.lastError();
    std::vector<std::string> Delta;
    for (int I = 0; I != 3; ++I)
      Delta.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, 14)));
    ASSERT_TRUE(appendSegment<Hash128>(Dir, Delta, AOpts).Ok);

    for (int Shot = 0; Shot != 10; ++Shot) {
      D.Srv.requestReload();
      const size_t Q = (Round * 10 + Shot) % Base.size();
      WireLookup Got;
      ASSERT_TRUE(C.lookup(Base[Q], Got, &Error)) << Error;
      ASSERT_TRUE(Got.Present) << "round " << Round << " shot " << Shot;
      EXPECT_EQ(Got.Hash, Truth[Q].Hash);
      EXPECT_EQ(Got.CanonicalBytes, Truth[Q].CanonicalBytes);
    }
  }
  ASSERT_TRUE(eventually(5000, [&] { return numSegments() == 1; }))
      << "compactor never finished: " << Compactor.lastError();
  Compactor.stop();
  EXPECT_GE(Compactor.compactions(), 12u) << Compactor.lastError();

  // Settle: any racy rejection must have healed (automatic retry), and
  // a final reload of the fully-compacted directory must succeed.
  EXPECT_TRUE(eventually(5000, [&] { return !D.Srv.degraded(); }))
      << "daemon stuck degraded: " << D.Srv.lastReloadError();
  Reply Final;
  ASSERT_TRUE(C.reload(Dir, Final, &Error)) << Error;
  EXPECT_TRUE(Final.ok()) << statusName(Final.S) << ": " << Final.Body;
  EXPECT_FALSE(D.Srv.degraded());
  for (size_t I = 0; I != Base.size(); ++I) {
    WireLookup Got;
    ASSERT_TRUE(C.lookup(Base[I], Got, &Error)) << Error;
    ASSERT_TRUE(Got.Present);
    EXPECT_EQ(Got.Hash, Truth[I].Hash);
    EXPECT_EQ(Got.CanonicalBytes, Truth[I].CanonicalBytes);
  }

  removeDirTree(Dir);
}

#endif // sockets
