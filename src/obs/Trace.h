//===- obs/Trace.h - Chrome trace_event profiling ---------------------------===//
///
/// \file
/// An opt-in trace-event collector emitting Chrome `trace_event` JSON
/// (loadable in `chrome://tracing` / Perfetto). Off by default: a
/// disabled \ref ScopedTrace costs one relaxed atomic load and no clock
/// read, so instrumentation can stay in place on hot-ish paths (chunk
/// granularity, phase granularity -- never per-expression).
///
/// Usage (the CLI's `--trace-out FILE` does exactly this):
///
/// \code
///   obs::TraceSink::global().enable();
///   { obs::ScopedTrace T("ingest", "phase"); ... }   // one complete span
///   std::string Error;
///   obs::TraceSink::global().writeJson(Path, &Error);
/// \endcode
///
/// Spans record wall time (ns since enable) and the emitting thread; the
/// JSON writer converts to the microsecond timestamps the format wants.
/// Collection is mutex-guarded -- span *end* is the only synchronised
/// point, which at chunk/phase granularity is noise. Gated by
/// `HMA_OBS_OFF` along with the metrics layer.
///
//===----------------------------------------------------------------------===//

#ifndef HMA_OBS_TRACE_H
#define HMA_OBS_TRACE_H

#include "obs/Metrics.h"

#include <cstdint>
#include <string>

namespace hma::obs {

#ifndef HMA_OBS_OFF

/// The process-wide trace-event collector.
class TraceSink {
public:
  static TraceSink &global();

  /// Start collecting; the moment of enabling is timestamp zero. Clears
  /// any previously collected events.
  void enable();
  /// Stop collecting (events already collected are kept for writeJson).
  void disable();
  bool enabled() const { return On.load(std::memory_order_relaxed); }

  /// Record one complete span ("ph":"X"): \p StartNs/\p DurNs are
  /// nanoseconds (start relative to the same clock \ref nowNanos uses;
  /// conversion to the enable-relative timebase happens here). \p Arg is
  /// an optional numeric payload rendered into the event's "args" (pass
  /// ArgNone for none). \p Name and \p Cat must be string literals (the
  /// sink stores the pointers).
  static constexpr int64_t ArgNone = INT64_MIN;
  void completeSpan(const char *Name, const char *Cat, uint64_t StartNs,
                    uint64_t DurNs, int64_t Arg = ArgNone);

  /// Record an instant event ("ph":"i") at now.
  void instant(const char *Name, const char *Cat);

  /// Number of events collected so far.
  size_t numEvents() const;

  /// Render every collected event as Chrome trace JSON. Returns the
  /// document; empty trace renders as a valid document with no events.
  std::string toJson() const;

  /// \ref toJson to a file (via the atomic-ish replace protocol used for
  /// index files). Returns false with \p Error set on I/O failure.
  bool writeJson(const std::string &Path, std::string *Error = nullptr) const;

private:
  TraceSink() = default;
  struct Impl;
  Impl &impl() const;

  std::atomic<bool> On{false};
};

/// RAII complete-span probe. When the sink is disabled, construction is
/// one relaxed load and destruction a branch.
class ScopedTrace {
public:
  ScopedTrace(const char *Name, const char *Cat,
              int64_t Arg = TraceSink::ArgNone)
      : Name(Name), Cat(Cat), Arg(Arg),
        Active(TraceSink::global().enabled()),
        Start(Active ? nowNanos() : 0) {}
  ScopedTrace(const ScopedTrace &) = delete;
  ScopedTrace &operator=(const ScopedTrace &) = delete;
  ~ScopedTrace() {
    if (Active)
      TraceSink::global().completeSpan(Name, Cat, Start, nowNanos() - Start,
                                       Arg);
  }

private:
  const char *Name;
  const char *Cat;
  int64_t Arg;
  bool Active;
  uint64_t Start;
};

#else // HMA_OBS_OFF

class TraceSink {
public:
  static constexpr int64_t ArgNone = INT64_MIN;
  static TraceSink &global() {
    static TraceSink T;
    return T;
  }
  void enable() {}
  void disable() {}
  bool enabled() const { return false; }
  void completeSpan(const char *, const char *, uint64_t, uint64_t,
                    int64_t = ArgNone) {}
  void instant(const char *, const char *) {}
  size_t numEvents() const { return 0; }
  std::string toJson() const { return "{\"traceEvents\": []}\n"; }
  bool writeJson(const std::string &, std::string * = nullptr) const {
    return true;
  }
};

class ScopedTrace {
public:
  ScopedTrace(const char *, const char *, int64_t = TraceSink::ArgNone) {}
  ScopedTrace(const ScopedTrace &) = delete;
  ScopedTrace &operator=(const ScopedTrace &) = delete;
};

#endif // HMA_OBS_OFF

} // namespace hma::obs

#endif // HMA_OBS_TRACE_H
