//===- ast/Expr.h - Expression AST ----------------------------------------===//
///
/// \file
/// The expression language whose subexpressions we hash modulo alpha.
///
/// The paper's core language (Section 4.1) is
///
///   data Expression = Var Name | Lam Name Expression
///                   | App Expression Expression
///
/// and notes it "can readily be extended to handle richer binding
/// constructs (let, case, etc.), as well as constants". We implement that
/// extension, because the paper's motivation depends on it: the CSE
/// application rewrites with `let`, the unbalanced benchmark family is
/// motivated by "deeply-nested stacks of let expressions", and the
/// real-life ML workloads are constant- and let-heavy.
///
///   e ::= x | \x. e | e1 e2 | let x = e1 in e2 | k        (k an integer)
///
/// `let` is non-recursive: `x` scopes over the body only.
///
/// Nodes are immutable, arena-allocated by an \ref ExprContext, and carry
/// a dense per-context id (used to index per-node hash vectors) and their
/// subtree size (used by generators, CSE profitability, and tests).
/// Expressions must be *trees*: helpers that need parent pointers (CSE,
/// incremental hashing) assert tree-ness.
///
//===----------------------------------------------------------------------===//

#ifndef HMA_AST_EXPR_H
#define HMA_AST_EXPR_H

#include "support/Arena.h"
#include "support/Interner.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string_view>

namespace hma {

/// Discriminator for \ref Expr nodes.
enum class ExprKind : uint8_t {
  Var,   ///< Variable occurrence.
  Lam,   ///< Lambda abstraction, one binder.
  App,   ///< Application.
  Let,   ///< Non-recursive let binding.
  Const, ///< Integer literal.
};

/// Human-readable name of an \ref ExprKind ("Var", "Lam", ...).
const char *exprKindName(ExprKind K);

/// An immutable expression node. Construct via \ref ExprContext.
class Expr {
public:
  ExprKind kind() const { return K; }

  /// Dense id within the owning context; ids index per-node hash vectors.
  uint32_t id() const { return Id; }

  /// Number of nodes in the subtree rooted here (>= 1).
  uint32_t treeSize() const { return Size; }

  // --- Var ---------------------------------------------------------------
  Name varName() const {
    assert(K == ExprKind::Var && "not a Var");
    return N;
  }

  // --- Lam ---------------------------------------------------------------
  Name lamBinder() const {
    assert(K == ExprKind::Lam && "not a Lam");
    return N;
  }
  const Expr *lamBody() const {
    assert(K == ExprKind::Lam && "not a Lam");
    return Kids.A;
  }

  // --- App ---------------------------------------------------------------
  const Expr *appFun() const {
    assert(K == ExprKind::App && "not an App");
    return Kids.A;
  }
  const Expr *appArg() const {
    assert(K == ExprKind::App && "not an App");
    return Kids.B;
  }

  // --- Let ---------------------------------------------------------------
  Name letBinder() const {
    assert(K == ExprKind::Let && "not a Let");
    return N;
  }
  const Expr *letBound() const {
    assert(K == ExprKind::Let && "not a Let");
    return Kids.A;
  }
  const Expr *letBody() const {
    assert(K == ExprKind::Let && "not a Let");
    return Kids.B;
  }

  // --- Const -------------------------------------------------------------
  int64_t constValue() const {
    assert(K == ExprKind::Const && "not a Const");
    return CVal;
  }

  // --- Generic child access (for traversals) ------------------------------
  unsigned numChildren() const {
    switch (K) {
    case ExprKind::Var:
    case ExprKind::Const:
      return 0;
    case ExprKind::Lam:
      return 1;
    case ExprKind::App:
    case ExprKind::Let:
      return 2;
    }
    assert(false && "covered switch");
    return 0;
  }

  /// Child \p I; Lam: {body}; App: {fun, arg}; Let: {bound, body}.
  const Expr *child(unsigned I) const {
    assert(I < numChildren() && "child index out of range");
    return I == 0 ? Kids.A : Kids.B;
  }

  /// The binder introduced by this node, or InvalidName.
  Name binder() const {
    return (K == ExprKind::Lam || K == ExprKind::Let) ? N : InvalidName;
  }

  /// True if this node binds a variable whose scope is child \p I.
  /// (Lam binds in child 0; Let binds in child 1 only.)
  bool bindsInChild(unsigned I) const {
    if (K == ExprKind::Lam)
      return I == 0;
    if (K == ExprKind::Let)
      return I == 1;
    return false;
  }

private:
  friend class ExprContext;
  Expr() = default;

  ExprKind K;
  Name N = InvalidName;
  uint32_t Id = 0;
  uint32_t Size = 1;
  union {
    struct {
      const Expr *A;
      const Expr *B;
    } Kids;
    int64_t CVal;
  };
};

/// Owns the arena, interner and id space for a family of expressions.
///
/// All expressions that are to be compared or hashed together must come
/// from one context (hash codes are stable across contexts with equal
/// seeds, but node ids and interned names are per-context).
class ExprContext {
public:
  ExprContext() = default;
  ExprContext(const ExprContext &) = delete;
  ExprContext &operator=(const ExprContext &) = delete;

  StringInterner &names() { return Interner; }
  const StringInterner &names() const { return Interner; }

  /// Total nodes created; also the exclusive upper bound of node ids.
  uint32_t numNodes() const { return NextId; }

  /// Intern \p Spelling (convenience forwarding).
  Name name(std::string_view Spelling) { return Interner.intern(Spelling); }

  // --- Node builders -------------------------------------------------------
  const Expr *var(Name N) {
    assert(N != InvalidName && "variable needs a name");
    Expr *E = fresh(ExprKind::Var);
    E->N = N;
    E->Size = 1;
    return E;
  }
  const Expr *var(std::string_view Spelling) { return var(name(Spelling)); }

  const Expr *lam(Name Binder, const Expr *Body) {
    assert(Body && "lambda needs a body");
    Expr *E = fresh(ExprKind::Lam);
    E->N = Binder;
    E->Kids.A = Body;
    E->Kids.B = nullptr;
    E->Size = 1 + Body->treeSize();
    return E;
  }
  const Expr *lam(std::string_view Binder, const Expr *Body) {
    return lam(name(Binder), Body);
  }

  const Expr *app(const Expr *Fun, const Expr *Arg) {
    assert(Fun && Arg && "application needs two children");
    Expr *E = fresh(ExprKind::App);
    E->Kids.A = Fun;
    E->Kids.B = Arg;
    E->Size = 1 + Fun->treeSize() + Arg->treeSize();
    return E;
  }

  /// Curried application sugar: app(f, {a, b}) == ((f a) b).
  const Expr *app(const Expr *Fun, std::initializer_list<const Expr *> Args) {
    const Expr *E = Fun;
    for (const Expr *A : Args)
      E = app(E, A);
    return E;
  }

  const Expr *let(Name Binder, const Expr *Bound, const Expr *Body) {
    assert(Bound && Body && "let needs a bound expression and a body");
    Expr *E = fresh(ExprKind::Let);
    E->N = Binder;
    E->Kids.A = Bound;
    E->Kids.B = Body;
    E->Size = 1 + Bound->treeSize() + Body->treeSize();
    return E;
  }
  const Expr *let(std::string_view Binder, const Expr *Bound,
                  const Expr *Body) {
    return let(name(Binder), Bound, Body);
  }

  const Expr *intConst(int64_t Value) {
    Expr *E = fresh(ExprKind::Const);
    E->CVal = Value;
    E->Size = 1;
    return E;
  }

  /// Deep-copy \p E (from this context) into a fresh tree. Used when a
  /// builder wants to "repeat" a fragment without creating sharing.
  const Expr *clone(const Expr *E);

  /// Scratch arena sharing the context's lifetime (for annotations).
  Arena &arena() { return Mem; }

  /// A process-unique id for this context instance. Pointer comparison
  /// alone cannot tell a context apart from a destroyed-and-recreated one
  /// at the same address (the classic ABA hazard for anything caching
  /// per-context state, e.g. AlphaHasher's name-hash cache); the epoch
  /// can.
  uint64_t epoch() const { return Epoch; }

private:
  static uint64_t nextEpoch() {
    static std::atomic<uint64_t> Counter{0};
    return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  Expr *fresh(ExprKind K) {
    // Placement-new directly: Expr's constructor is private to this class.
    Expr *E = new (Mem.allocate(sizeof(Expr), alignof(Expr))) Expr();
    E->K = K;
    E->Id = NextId++;
    assert(NextId != 0 && "node id overflow");
    return E;
  }

  Arena Mem;
  StringInterner Interner;
  uint32_t NextId = 0;
  uint64_t Epoch = nextEpoch();
};

} // namespace hma

#endif // HMA_AST_EXPR_H
