//===- obs/Metrics.h - Low-overhead metrics for the hashing/index stack -----===//
///
/// \file
/// A header-first metrics subsystem for the hot paths of the index layer:
/// relaxed-atomic counters and gauges, fixed-bucket log2-scale latency
/// histograms, an RAII \ref ScopedTimer, and a process-wide \ref Registry
/// whose storage is sharded per thread so hot-path increments never touch
/// a shared cache line, let alone a lock.
///
/// Design:
///
///  - **Handles, not objects.** \ref Counter / \ref Gauge / \ref Histogram
///    are trivially-copyable ids into the registry. Call sites register
///    once (typically into a function-local static) and increment through
///    the handle; registration is the only operation that takes a lock.
///
///  - **Thread-local sharding.** Every thread that increments gets its own
///    \ref detail::ThreadShard -- fixed arrays of relaxed atomics indexed
///    by metric id. The owning thread is the only writer of its shard, so
///    an increment is one TLS load plus one uncontended relaxed
///    `fetch_add`; \ref Registry::snapshot folds live shards (plus the
///    residue of exited threads) under the registry mutex. Totals observed
///    after all writer threads have joined are exact (tested by the
///    8-thread hammer in tests/obs_test.cpp).
///
///  - **log2 histograms.** \ref HistogramData keeps count / sum / min /
///    max plus 65 power-of-two buckets (bucket i holds values whose bit
///    width is i, i.e. [2^(i-1), 2^i)). Merging two histograms is
///    lossless, associative and commutative -- per-thread distributions
///    fold into one without approximation -- and \ref
///    HistogramData::percentile interpolates within a bucket, clamped to
///    the observed [min, max], so estimates are monotone in the quantile.
///
///  - **Compile-out switch.** Building with `-DHMA_OBS_OFF` (CMake option
///    `HMA_OBS_OFF`) turns every handle into an empty struct and every
///    operation -- including \ref ScopedTimer's clock reads -- into a
///    no-op the optimizer deletes. CI's overhead smoke compares an
///    instrumented `lookupBatch` against an `HMA_OBS_OFF` build and
///    requires the instrumented run within 5%.
///
/// Time values are recorded in nanoseconds (histogram names end in `_ns`
/// by convention); byte counters end in `_bytes_total`, event counters in
/// `_total`. See src/obs/README.md for the metric inventory and the
/// exposition formats (`hma index stats --json | --prom`, Chrome
/// `trace_event` JSON via obs/Trace.h).
///
//===----------------------------------------------------------------------===//

#ifndef HMA_OBS_METRICS_H
#define HMA_OBS_METRICS_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hma::obs {

/// True when the metrics layer is compiled in (no `HMA_OBS_OFF`).
#ifdef HMA_OBS_OFF
inline constexpr bool Enabled = false;
#else
inline constexpr bool Enabled = true;
#endif

/// Monotonic nanoseconds (steady clock); the time base of every timer
/// and trace event.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// HistogramData: the mergeable value type
//===----------------------------------------------------------------------===//

/// A fixed-bucket log2-scale histogram value: what one thread shard
/// accumulates and what \ref Registry::snapshot returns. Plain data --
/// recording and merging are lossless with respect to the bucketing, so
/// per-thread histograms fold into process totals exactly.
struct HistogramData {
  /// Bucket i holds values with bit width i: bucket 0 is {0}, bucket i
  /// (i >= 1) is [2^(i-1), 2^i). 64-bit values need widths 0..64.
  static constexpr unsigned NumBuckets = 65;

  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = UINT64_MAX; ///< Meaningless until Count > 0 (see min()).
  uint64_t Max = 0;
  uint64_t Buckets[NumBuckets] = {};

  /// Which bucket \p V lands in (its bit width).
  static unsigned bucketFor(uint64_t V) {
    unsigned W = 0;
    while (V) {
      ++W;
      V >>= 1;
    }
    return W;
  }

  /// Inclusive lower bound of bucket \p I.
  static uint64_t bucketLow(unsigned I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }

  /// Inclusive upper bound of bucket \p I (UINT64_MAX for the last).
  static uint64_t bucketHigh(unsigned I) {
    return I >= 64 ? UINT64_MAX : (uint64_t(1) << I) - 1;
  }

  void record(uint64_t V) {
    ++Count;
    Sum += V;
    Min = std::min(Min, V);
    Max = std::max(Max, V);
    ++Buckets[bucketFor(V)];
  }

  /// Fold \p O in. Associative and commutative: merging per-thread
  /// histograms in any order yields the same value (tested).
  void merge(const HistogramData &O) {
    Count += O.Count;
    Sum += O.Sum;
    Min = std::min(Min, O.Min);
    Max = std::max(Max, O.Max);
    for (unsigned I = 0; I != NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
  }

  uint64_t min() const { return Count ? Min : 0; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }

  /// Estimate the \p Q quantile (Q in [0, 1]): find the bucket holding
  /// the target rank, interpolate linearly inside it, and clamp to the
  /// observed [min, max]. Exact at Q=0 / Q=1; monotone non-decreasing in
  /// Q everywhere (tested).
  double percentile(double Q) const {
    if (!Count)
      return 0.0;
    Q = std::clamp(Q, 0.0, 1.0);
    // Target rank in [1, Count].
    double Target = Q * static_cast<double>(Count);
    if (Target < 1.0)
      Target = 1.0;
    uint64_t Cum = 0;
    for (unsigned I = 0; I != NumBuckets; ++I) {
      if (!Buckets[I])
        continue;
      uint64_t Next = Cum + Buckets[I];
      if (static_cast<double>(Next) >= Target) {
        double Frac = (Target - static_cast<double>(Cum)) /
                      static_cast<double>(Buckets[I]);
        double Lo = static_cast<double>(bucketLow(I));
        double Hi = static_cast<double>(bucketHigh(I));
        double V = Lo + Frac * (Hi - Lo);
        return std::clamp(V, static_cast<double>(min()),
                          static_cast<double>(Max));
      }
      Cum = Next;
    }
    return static_cast<double>(Max);
  }
};

//===----------------------------------------------------------------------===//
// Snapshot rows
//===----------------------------------------------------------------------===//

/// One merged metric as returned by \ref Registry::snapshot.
struct CounterRow {
  std::string Name;
  std::string Help;
  uint64_t Value = 0;
};

struct GaugeRow {
  std::string Name;
  std::string Help;
  int64_t Value = 0;
};

struct HistogramRow {
  std::string Name;
  std::string Help;
  HistogramData Data;
};

/// Everything the registry knows, merged across thread shards, sorted by
/// name within each kind. A value: safe to hold, print, serialise.
struct Snapshot {
  std::vector<CounterRow> Counters;
  std::vector<GaugeRow> Gauges;
  std::vector<HistogramRow> Histograms;

  /// The counter/histogram with \p Name, or nullptr. Convenience for
  /// tests and bench reporters.
  const CounterRow *counter(std::string_view Name) const {
    for (const CounterRow &C : Counters)
      if (C.Name == Name)
        return &C;
    return nullptr;
  }
  const HistogramRow *histogram(std::string_view Name) const {
    for (const HistogramRow &H : Histograms)
      if (H.Name == Name)
        return &H;
    return nullptr;
  }
};

#ifndef HMA_OBS_OFF

namespace detail {

/// Hard caps on distinct registered metrics: thread shards are fixed
/// arrays so an increment never allocates or resizes. ~25 metrics exist
/// today; registration past the cap folds into the last slot (and is a
/// bug -- asserted in debug builds).
constexpr unsigned MaxCounters = 128;
constexpr unsigned MaxHistograms = 64;
constexpr unsigned MaxGauges = 64;

/// One thread's private metric storage. The owning thread is the only
/// writer; the registry reads concurrently with relaxed loads (and folds
/// the final values into its retired totals when the thread exits).
struct ThreadShard {
  std::atomic<uint64_t> Counters[MaxCounters] = {};

  struct Hist {
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Min{UINT64_MAX};
    std::atomic<uint64_t> Max{0};
    std::atomic<uint64_t> Buckets[HistogramData::NumBuckets] = {};
  };
  Hist Hists[MaxHistograms];

  void recordHist(unsigned Id, uint64_t V) {
    Hist &H = Hists[Id];
    H.Count.fetch_add(1, std::memory_order_relaxed);
    H.Sum.fetch_add(V, std::memory_order_relaxed);
    // Owner-thread-only writes: plain load/store min/max, no CAS needed.
    if (V < H.Min.load(std::memory_order_relaxed))
      H.Min.store(V, std::memory_order_relaxed);
    if (V > H.Max.load(std::memory_order_relaxed))
      H.Max.store(V, std::memory_order_relaxed);
    H.Buckets[HistogramData::bucketFor(V)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Read the shard's view of histogram \p Id into a plain value
  /// (relaxed loads; exact once the owner has quiesced).
  HistogramData readHist(unsigned Id) const {
    const Hist &H = Hists[Id];
    HistogramData D;
    D.Count = H.Count.load(std::memory_order_relaxed);
    D.Sum = H.Sum.load(std::memory_order_relaxed);
    D.Min = H.Min.load(std::memory_order_relaxed);
    D.Max = H.Max.load(std::memory_order_relaxed);
    for (unsigned I = 0; I != HistogramData::NumBuckets; ++I)
      D.Buckets[I] = H.Buckets[I].load(std::memory_order_relaxed);
    return D;
  }
};

} // namespace detail

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// The process-wide metric registry. Holds metric definitions (name,
/// help), the global gauge cells, the list of live thread shards and the
/// folded residue of exited threads. All registry operations take its
/// mutex; metric *increments* never do -- they go straight to the calling
/// thread's shard.
class Registry {
public:
  /// The process registry. Deliberately leaked so thread-exit hooks that
  /// run during shutdown can always reach it.
  static Registry &global();

  /// Register (or look up -- names are deduplicated) a metric. Returns
  /// its id. Thread-safe; takes the registry mutex.
  unsigned counterId(std::string_view Name, std::string_view Help);
  unsigned gaugeId(std::string_view Name, std::string_view Help);
  unsigned histogramId(std::string_view Name, std::string_view Help);

  /// Hot-path operations (relaxed, uncontended; see file comment).
  void add(unsigned CounterId, uint64_t Delta);
  void record(unsigned HistogramId, uint64_t Value);
  /// Gauges are set-to-absolute and rare: one shared atomic cell each.
  void gaugeSet(unsigned GaugeId, int64_t Value);
  void gaugeAdd(unsigned GaugeId, int64_t Delta);

  /// Merge every thread shard (live and retired) into a sorted snapshot.
  Snapshot snapshot() const;

  /// Zero every metric (live shards and retired residue) without
  /// forgetting registrations. For benches that measure phases and tests
  /// that need a clean slate; racing writers may leak increments into
  /// the cleared state, so quiesce first.
  void reset();

  // Internal: thread-shard lifecycle (see MetricsImpl in Metrics.cpp).
  detail::ThreadShard *acquireShard();
  void retireShard(detail::ThreadShard *Shard);

private:
  Registry() = default;
  struct Impl;
  Impl &impl() const;
};

//===----------------------------------------------------------------------===//
// Handles
//===----------------------------------------------------------------------===//

/// A monotonically increasing event/byte counter.
class Counter {
public:
  Counter() = default;
  /// Register (or find) the counter named \p Name. Cache the result in a
  /// function-local static: registration locks, increments do not.
  static Counter get(const char *Name, const char *Help) {
    return Counter(Registry::global().counterId(Name, Help));
  }
  void add(uint64_t Delta = 1) const { Registry::global().add(Id, Delta); }

private:
  explicit Counter(unsigned Id) : Id(Id) {}
  unsigned Id = 0;
};

/// A set-to-absolute instantaneous value (occupancy, bytes resident).
class Gauge {
public:
  Gauge() = default;
  static Gauge get(const char *Name, const char *Help) {
    return Gauge(Registry::global().gaugeId(Name, Help));
  }
  void set(int64_t V) const { Registry::global().gaugeSet(Id, V); }
  void add(int64_t Delta) const { Registry::global().gaugeAdd(Id, Delta); }

private:
  explicit Gauge(unsigned Id) : Id(Id) {}
  unsigned Id = 0;
};

/// A log2-bucket distribution (latencies in ns, sizes in bytes).
class Histogram {
public:
  Histogram() = default;
  static Histogram get(const char *Name, const char *Help) {
    return Histogram(Registry::global().histogramId(Name, Help));
  }
  void record(uint64_t V) const { Registry::global().record(Id, V); }

private:
  explicit Histogram(unsigned Id) : Id(Id) {}
  unsigned Id = 0;
};

/// RAII latency probe: records elapsed nanoseconds into a histogram on
/// destruction. Declare after a lock to time the hold (destructors run in
/// reverse order, so the timer stops before the lock releases).
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram H) : H(H), Start(nowNanos()) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { H.record(nowNanos() - Start); }

  /// Nanoseconds since construction (for callers that also want the
  /// value, e.g. to attach to a trace span).
  uint64_t elapsedNanos() const { return nowNanos() - Start; }

private:
  Histogram H;
  uint64_t Start;
};

#else // HMA_OBS_OFF: every operation is a no-op the optimizer deletes.

class Registry {
public:
  static Registry &global() {
    static Registry R;
    return R;
  }
  Snapshot snapshot() const { return Snapshot(); }
  void reset() {}
};

class Counter {
public:
  Counter() = default;
  static Counter get(const char *, const char *) { return Counter(); }
  void add(uint64_t = 1) const {}
};

class Gauge {
public:
  Gauge() = default;
  static Gauge get(const char *, const char *) { return Gauge(); }
  void set(int64_t) const {}
  void add(int64_t) const {}
};

class Histogram {
public:
  Histogram() = default;
  static Histogram get(const char *, const char *) { return Histogram(); }
  void record(uint64_t) const {}
};

class ScopedTimer {
public:
  explicit ScopedTimer(Histogram) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() = default;
  uint64_t elapsedNanos() const { return 0; }
};

#endif // HMA_OBS_OFF

} // namespace hma::obs

#endif // HMA_OBS_METRICS_H
