//===- tests/support_test.cpp - support library unit tests ------------------===//
///
/// \file
/// Hash codes, the mixing engine, the salt schema, RNG, arena, interner.
///
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/HashCode.h"
#include "support/HashSchema.h"
#include "support/Interner.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <set>
#include <string>
#include <unordered_set>
#include <vector>

using namespace hma;

//===----------------------------------------------------------------------===//
// Hash code value types
//===----------------------------------------------------------------------===//

TEST(HashCode, XorIsSelfInverse128) {
  Hash128 A(0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL);
  Hash128 B(0xDEADBEEFCAFEF00DULL, 0x0F1E2D3C4B5A6978ULL);
  EXPECT_EQ((A ^ B) ^ B, A);
  EXPECT_EQ((A ^ B) ^ A, B);
  EXPECT_EQ(A ^ A, Hash128());
}

TEST(HashCode, XorIsCommutativeAssociative) {
  Hash64 A(1), B(2), C(3);
  EXPECT_EQ(A ^ B, B ^ A);
  EXPECT_EQ((A ^ B) ^ C, A ^ (B ^ C));
}

TEST(HashCode, OrderingAndEquality) {
  Hash128 A(1, 2), B(1, 3), C(2, 0);
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(B < C);
  EXPECT_TRUE(A < C);
  EXPECT_FALSE(A < A);
  EXPECT_NE(A, B);
  EXPECT_EQ(A, Hash128(1, 2));
}

TEST(HashCode, HexRendering) {
  EXPECT_EQ(Hash128(0, 0).toHex(), std::string(32, '0'));
  EXPECT_EQ(Hash128(0x1, 0xF).toHex(),
            "0000000000000001000000000000000f");
  EXPECT_EQ(Hash64(0xDEADBEEFULL).toHex(), "00000000deadbeef");
  EXPECT_EQ(Hash16(0xBEEF).toHex(), "beef");
}

TEST(HashCode, IsZero) {
  EXPECT_TRUE(Hash128().isZero());
  EXPECT_FALSE(Hash128(0, 1).isZero());
  EXPECT_TRUE(Hash16().isZero());
}

//===----------------------------------------------------------------------===//
// MixEngine
//===----------------------------------------------------------------------===//

TEST(MixEngine, DeterministicForSameInput) {
  MixEngine A(42), B(42);
  A.addWord(7);
  B.addWord(7);
  EXPECT_EQ(A.finish<Hash128>(), B.finish<Hash128>());
}

TEST(MixEngine, SaltChangesResult) {
  MixEngine A(1), B(2);
  A.addWord(7);
  B.addWord(7);
  EXPECT_NE(A.finish<Hash128>(), B.finish<Hash128>());
}

TEST(MixEngine, OrderSensitive) {
  MixEngine A(0), B(0);
  A.addWord(1);
  A.addWord(2);
  B.addWord(2);
  B.addWord(1);
  EXPECT_NE(A.finish<Hash128>(), B.finish<Hash128>());
}

TEST(MixEngine, NoTrivialCollisionsOnCounter) {
  // 100k sequential words through one salt: all 128-bit outputs distinct,
  // and the low 16 bits look uniform (no empty buckets over 64k draws).
  std::set<Hash128> Seen;
  for (uint64_t I = 0; I != 100000; ++I) {
    MixEngine E(123);
    E.addWord(I);
    EXPECT_TRUE(Seen.insert(E.finish<Hash128>()).second) << "at " << I;
  }
}

TEST(MixEngine, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  for (unsigned Bit = 0; Bit != 64; ++Bit) {
    MixEngine A(9), B(9);
    A.addWord(0);
    B.addWord(1ULL << Bit);
    Hash128 HA = A.finish<Hash128>(), HB = B.finish<Hash128>();
    int Flipped = __builtin_popcountll(HA.Hi ^ HB.Hi) +
                  __builtin_popcountll(HA.Lo ^ HB.Lo);
    EXPECT_GT(Flipped, 32) << "weak avalanche at bit " << Bit;
    EXPECT_LT(Flipped, 96) << "weak avalanche at bit " << Bit;
  }
}

//===----------------------------------------------------------------------===//
// HashSchema
//===----------------------------------------------------------------------===//

TEST(HashSchema, SaltsAreDistinctPerTag) {
  HashSchema S(7);
  std::set<uint64_t> Salts;
  for (unsigned I = 0; I != unsigned(CombinerTag::NumTags); ++I)
    Salts.insert(S.salt(static_cast<CombinerTag>(I)));
  EXPECT_EQ(Salts.size(), size_t(CombinerTag::NumTags));
}

TEST(HashSchema, SeedChangesEverySalt) {
  HashSchema A(1), B(2);
  for (unsigned I = 0; I != unsigned(CombinerTag::NumTags); ++I)
    EXPECT_NE(A.salt(static_cast<CombinerTag>(I)),
              B.salt(static_cast<CombinerTag>(I)));
}

TEST(HashSchema, CombineDistinguishesTagAndArity) {
  HashSchema S;
  Hash128 X(3, 4);
  EXPECT_NE(S.combine<Hash128>(CombinerTag::StructApp, X),
            S.combine<Hash128>(CombinerTag::StructLamSome, X));
  EXPECT_NE(S.combine<Hash128>(CombinerTag::StructApp, X),
            S.combine<Hash128>(CombinerTag::StructApp, X, X));
}

TEST(HashSchema, HashBytesMatchesContentNotChunking) {
  HashSchema S;
  // Same content -> same hash; different length or content -> different.
  std::string A = "variable_name_x";
  Hash128 H1 = S.hashBytes<Hash128>(CombinerTag::NameLeaf, A.data(), A.size());
  std::string B = A;
  Hash128 H2 = S.hashBytes<Hash128>(CombinerTag::NameLeaf, B.data(), B.size());
  EXPECT_EQ(H1, H2);
  std::string C = "variable_name_y";
  EXPECT_NE(H1,
            S.hashBytes<Hash128>(CombinerTag::NameLeaf, C.data(), C.size()));
  std::string D = "variable_name_x ";
  EXPECT_NE(H1,
            S.hashBytes<Hash128>(CombinerTag::NameLeaf, D.data(), D.size()));
}

TEST(HashSchema, HashBytesPrefixSafety) {
  // "ab" + "c" vs "abc" padding confusion: hash includes the length.
  HashSchema S;
  const char *A = "abc\0\0\0\0\0";
  Hash128 H1 = S.hashBytes<Hash128>(CombinerTag::NameLeaf, A, 3);
  Hash128 H2 = S.hashBytes<Hash128>(CombinerTag::NameLeaf, A, 5);
  EXPECT_NE(H1, H2);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(5), B(5), C(6);
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next(), VB = B.next();
    EXPECT_EQ(VA, VB);
    (void)C.next();
  }
  Rng A2(5), C2(6);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng R(99);
  std::vector<int> Counts(10, 0);
  for (int I = 0; I != 10000; ++I) {
    uint64_t V = R.below(10);
    ASSERT_LT(V, 10u);
    ++Counts[V];
  }
  for (int I = 0; I != 10; ++I)
    EXPECT_GT(Counts[I], 800) << "bucket " << I << " suspiciously rare";
}

TEST(Rng, RangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-2, 2);
    ASSERT_GE(V, -2);
    ASSERT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, SplitDecorrelates) {
  Rng A(5);
  Rng B = A.split();
  // The parent and child streams should differ immediately.
  EXPECT_NE(A.next(), B.next());
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AlignmentRespected) {
  Arena A;
  for (size_t Align : {1, 2, 4, 8, 16, 32}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "misaligned for " << Align;
  }
}

TEST(Arena, ManySmallAllocationsDistinct) {
  Arena A;
  std::unordered_set<void *> Seen;
  for (int I = 0; I != 10000; ++I) {
    void *P = A.allocate(16, 8);
    EXPECT_TRUE(Seen.insert(P).second);
  }
  EXPECT_GE(A.bytesAllocated(), 160000u);
}

TEST(Arena, LargeAllocationSpansSlab) {
  Arena A;
  // Bigger than the initial slab: must still succeed.
  void *P = A.allocate(1 << 20, 8);
  EXPECT_NE(P, nullptr);
}

TEST(Arena, CopyStringStable) {
  Arena A;
  std::string Source = "hello world";
  std::string_view Copy = A.copyString(Source);
  Source.assign("clobbered!!");
  EXPECT_EQ(Copy, "hello world");
  EXPECT_EQ(A.copyString("").size(), 0u);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(Interner, InternIsIdempotent) {
  StringInterner I;
  Name A = I.intern("foo");
  Name B = I.intern("foo");
  Name C = I.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.spelling(A), "foo");
  EXPECT_EQ(I.spelling(C), "bar");
  EXPECT_EQ(I.size(), 2u);
}

TEST(Interner, SpellingSurvivesRehash) {
  StringInterner I;
  Name First = I.intern("zero");
  std::string_view FirstSpelling = I.spelling(First);
  for (int K = 0; K != 10000; ++K)
    I.intern("name" + std::to_string(K));
  EXPECT_EQ(I.spelling(First), FirstSpelling);
  EXPECT_EQ(I.spelling(First), "zero");
}

TEST(Interner, FreshNamesNeverCollide) {
  StringInterner I;
  I.intern("x$0"); // occupy the obvious candidate
  Name F1 = I.freshName("x");
  Name F2 = I.freshName("x");
  EXPECT_NE(F1, F2);
  EXPECT_NE(I.spelling(F1), "x$0");
  EXPECT_NE(I.spelling(F2), "x$0");
}

TEST(Interner, ContainsDoesNotIntern) {
  StringInterner I;
  EXPECT_FALSE(I.contains("ghost"));
  EXPECT_EQ(I.size(), 0u);
  I.intern("ghost");
  EXPECT_TRUE(I.contains("ghost"));
}
