//===- tests/core_linear_test.cpp - Appendix C variant tests ----------------===//
///
/// \file
/// The affine-transform (lazy map transformation) variant: its affine
/// algebra must be exactly invertible, and the hasher must induce the
/// same partition of subexpressions as the StructureTag algorithm and
/// the oracle.
///
//===----------------------------------------------------------------------===//

#include "core/LinearMapHasher.h"

#include "core/AlphaHasher.h"
#include "eqclass/EquivClasses.h"
#include "gen/RandomExpr.h"

#include "ast/Uniquify.h"
#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace hma;

//===----------------------------------------------------------------------===//
// Affine transform algebra
//===----------------------------------------------------------------------===//

template <typename H> class AffineTest : public ::testing::Test {};
using AffineWidths = ::testing::Types<Hash16, Hash64, Hash128>;
TYPED_TEST_SUITE(AffineTest, AffineWidths);

TYPED_TEST(AffineTest, InverseReallyInverts) {
  using AT = AffineTransform<TypeParam>;
  Rng R(1);
  for (int I = 0; I != 200; ++I) {
    AT F = AT::fromSeed(R.next(), R.next(), R.next(), R.next());
    typename AT::U X = static_cast<typename AT::U>(R.next());
    EXPECT_EQ(F.applyInverse(F.apply(X)), X);
    EXPECT_EQ(F.apply(F.applyInverse(X)), X);
  }
}

TYPED_TEST(AffineTest, CompositionMatchesSequentialApplication) {
  using AT = AffineTransform<TypeParam>;
  Rng R(2);
  for (int I = 0; I != 100; ++I) {
    AT F = AT::fromSeed(R.next(), R.next(), R.next(), R.next());
    AT G = AT::fromSeed(R.next(), R.next(), R.next(), R.next());
    AT FG = F;
    FG.composeAfter(G); // FG = G after F
    typename AT::U X = static_cast<typename AT::U>(R.next());
    EXPECT_EQ(FG.apply(X), G.apply(F.apply(X)));
    EXPECT_EQ(FG.applyInverse(G.apply(F.apply(X))), X)
        << "composed inverse must track the composed forward";
  }
}

TYPED_TEST(AffineTest, IdentityIsNeutral) {
  using AT = AffineTransform<TypeParam>;
  AT Id = AT::identity();
  typename AT::U X = 12345;
  EXPECT_EQ(Id.apply(X), X);
  EXPECT_EQ(Id.applyInverse(X), X);
  AT F = AT::fromSeed(9, 8, 7, 6);
  AT FId = F;
  FId.composeAfter(Id);
  EXPECT_EQ(FId.apply(X), F.apply(X));
}

//===----------------------------------------------------------------------===//
// Hashing behaviour
//===----------------------------------------------------------------------===//

namespace {

Hash128 linHash(ExprContext &Ctx, const char *Src) {
  LinearMapHasher<Hash128> H(Ctx);
  return H.hashRoot(uniquifyBinders(Ctx, parseT(Ctx, Src)));
}

} // namespace

TEST(LinearMapHasher, RenamingInvariance) {
  ExprContext Ctx;
  EXPECT_EQ(linHash(Ctx, "(lam (x) (add x 1))"),
            linHash(Ctx, "(lam (y) (add y 1))"));
  EXPECT_EQ(linHash(Ctx, "(let (x (exp z)) (add x 7))"),
            linHash(Ctx, "(let (y (exp z)) (add y 7))"));
}

TEST(LinearMapHasher, Distinguishes) {
  ExprContext Ctx;
  EXPECT_NE(linHash(Ctx, "(lam (x) (add x y))"),
            linHash(Ctx, "(lam (q) (add q z))"));
  EXPECT_NE(linHash(Ctx, "(add x x)"), linHash(Ctx, "(add x y)"));
  EXPECT_NE(linHash(Ctx, "(lam (x) (x (x x)))"),
            linHash(Ctx, "(lam (x) ((x x) x))"));
}

class LinearPartitionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LinearPartitionTest, MatchesOracleAndTaggedAlgorithm) {
  uint32_t Size = GetParam();
  ExprContext Ctx;
  Rng R(808 + Size);
  for (int Rep = 0; Rep != 6; ++Rep) {
    const Expr *E = (Rep % 2 == 0) ? genBalanced(Ctx, R, Size)
                                   : genUnbalanced(Ctx, R, Size);
    LinearMapHasher<Hash128> Lin(Ctx);
    AlphaHasher<Hash128> Tagged(Ctx);
    std::vector<uint32_t> LinIds = partitionIds(E, Lin.hashAll(E));
    EXPECT_EQ(LinIds, oraclePartitionIds(Ctx, E))
        << "size " << Size << " rep " << Rep;
    EXPECT_EQ(LinIds, partitionIds(E, Tagged.hashAll(E)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinearPartitionTest,
                         ::testing::Values(2, 5, 16, 48, 130));

TEST(LinearMapHasher, LetHeavyPrograms) {
  ExprContext Ctx;
  Rng R(99);
  for (int Rep = 0; Rep != 8; ++Rep) {
    const Expr *E = uniquifyBinders(Ctx, genArithmetic(Ctx, R, 150));
    LinearMapHasher<Hash128> Lin(Ctx);
    EXPECT_EQ(partitionIds(E, Lin.hashAll(E)), oraclePartitionIds(Ctx, E));
  }
}

TEST(LinearMapHasher, DeepSpine) {
  ExprContext Ctx;
  Rng R(3);
  const Expr *E = genUnbalanced(Ctx, R, 300001);
  LinearMapHasher<Hash128> H(Ctx);
  EXPECT_FALSE(H.hashRoot(E).isZero());
}

TEST(LinearMapHasher, SeedIndependentPartition) {
  ExprContext Ctx;
  Rng R(15);
  const Expr *E = genBalanced(Ctx, R, 120);
  LinearMapHasher<Hash128> H1(Ctx, HashSchema(10));
  LinearMapHasher<Hash128> H2(Ctx, HashSchema(20));
  std::vector<Hash128> V1 = H1.hashAll(E), V2 = H2.hashAll(E);
  EXPECT_NE(V1[E->id()], V2[E->id()]);
  EXPECT_EQ(partitionIds(E, V1), partitionIds(E, V2));
}
