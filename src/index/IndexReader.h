//===- index/IndexReader.h - Shared lookup surface of index backends --------===//
///
/// \file
/// The read-side contract every index backend serves.
///
/// The paper's hash-then-verify design means "an index" is observably
/// nothing but a class table -- (alpha-hash, canonical bytes, count) --
/// plus a way to probe it exactly. Two backends provide that table:
///
///  - \ref AlphaHashIndex: the live, mutable, sharded in-memory store
///    (whether built by ingest or materialized from an `HMAI` file by
///    `index/IndexIO.h`);
///  - \ref MappedIndex: a read-only, zero-copy view over an mmap'd
///    `HMAI` file that binary-searches the on-disk tables directly.
///
/// \ref IndexReader is the surface they share: single and batch lookups,
/// the stats/diagnostics the CLI prints, and the canonical snapshot
/// export. Serving code (`hma index open`, the future `hma indexd`)
/// programs against this interface and does not care whether classes are
/// resident or paged.
///
/// The shared result types live here too. \ref LookupResult returns the
/// canonical representative as a *view* (`std::string_view`): the live
/// index points into its shard store (class bytes are immutable and
/// never relocate once interned), the mapped index points straight into
/// the mapping -- in both cases a query copies no blob bytes. The view
/// is valid for as long as the backend it came from (for \ref
/// MappedIndex: the mapping) is alive; callers that outlive the backend
/// must copy.
///
//===----------------------------------------------------------------------===//

#ifndef HMA_INDEX_INDEXREADER_H
#define HMA_INDEX_INDEXREADER_H

#include "ast/Expr.h"
#include "ast/Serialize.h"
#include "support/HashCode.h"
#include "support/HashSchema.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hma {

/// Aggregated ingest/collision counters for an index (live or mapped).
struct IndexStats {
  uint64_t Inserted = 0;       ///< Successful ingest operations.
  uint64_t NewClasses = 0;     ///< Inserts that created a class.
  uint64_t Duplicates = 0;     ///< Inserts merged into an existing class.
  uint64_t FallbackChecks = 0; ///< Exact alpha-equivalence checks run.
  uint64_t VerifiedCollisions = 0; ///< Hash hits refuted by the oracle.
  uint64_t DecodeErrors = 0;   ///< Corpus blobs that failed to deserialise.

  IndexStats &operator+=(const IndexStats &O) {
    Inserted += O.Inserted;
    NewClasses += O.NewClasses;
    Duplicates += O.Duplicates;
    FallbackChecks += O.FallbackChecks;
    VerifiedCollisions += O.VerifiedCollisions;
    DecodeErrors += O.DecodeErrors;
    return *this;
  }
};

/// Probe-engine selection for the mapped read path. The engines answer
/// identically (same lower bound, same candidate scan, same exact
/// verify) and differ only in how they walk the on-disk tables; \ref
/// MappedIndex picks the fastest available one under `Auto` and falls
/// back to `Scalar` for v1 files that carry no Eytzinger sidecar.
enum class ProbeEngine : uint8_t {
  Auto,        ///< Best available: interleaved batches, Eytzinger singles.
  Scalar,      ///< Branchy binary search over the record table (v1 path).
  Eytzinger,   ///< Branchless BFS-layout descent over the v2 sidecar.
  Interleaved, ///< Eytzinger with K concurrent descents per batch worker.
};

/// Stable lowercase label of \p E ("auto", "scalar", ...).
inline const char *probeEngineLabel(ProbeEngine E) {
  switch (E) {
  case ProbeEngine::Auto:
    return "auto";
  case ProbeEngine::Scalar:
    return "scalar";
  case ProbeEngine::Eytzinger:
    return "eytzinger";
  case ProbeEngine::Interleaved:
    return "interleaved";
  }
  return "auto";
}

/// Parse a \ref probeEngineLabel back into an engine (CLI `--probe=`).
inline std::optional<ProbeEngine> parseProbeEngine(std::string_view Name) {
  for (ProbeEngine E : {ProbeEngine::Auto, ProbeEngine::Scalar,
                        ProbeEngine::Eytzinger, ProbeEngine::Interleaved})
    if (Name == probeEngineLabel(E))
      return E;
  return std::nullopt;
}

/// Result of a membership query. \p CanonicalBytes is a zero-copy view
/// into the answering backend (see the file comment for lifetime rules).
template <typename H> struct LookupResult {
  H Hash{};           ///< Alpha-hash of the queried expression.
  uint64_t Count = 0; ///< Members ingested into the matching class.
  std::string_view CanonicalBytes; ///< Serialised canonical representative.
};

/// One equivalence class, as exported by \ref IndexReader::snapshot. An
/// owning export (unlike \ref LookupResult): snapshots outlive backends.
template <typename H> struct ClassSummary {
  H Hash{};
  uint64_t Count = 0;
  std::string CanonicalBytes;
};

namespace detail {

/// Canonical \ref IndexReader::snapshot order: ascending (hash, bytes).
/// Shared by every backend so snapshots are equality-comparable values.
template <typename H>
bool lessByHashThenBytes(const ClassSummary<H> &A, const ClassSummary<H> &B) {
  if (A.Hash != B.Hash)
    return A.Hash < B.Hash;
  return A.CanonicalBytes < B.CanonicalBytes;
}

/// Ordering of "largest classes" reports: descending member count, ties
/// by ascending (hash, bytes) -- deterministic and identical across
/// backends.
template <typename H>
bool moreDuplicated(const ClassSummary<H> &A, const ClassSummary<H> &B) {
  if (A.Count != B.Count)
    return A.Count > B.Count;
  if (A.Hash != B.Hash)
    return A.Hash < B.Hash;
  return A.CanonicalBytes < B.CanonicalBytes;
}

/// Offer one class to a top-\p N selection held in \p Top (kept sorted
/// by \ref moreDuplicated). Copies the candidate's bytes only when it
/// actually enters the selection, so a backend can scan its whole table
/// while materializing at most N blobs -- what keeps
/// \ref IndexReader::largestClasses cheap on the zero-copy mapped
/// reader.
template <typename H>
void considerLargest(std::vector<ClassSummary<H>> &Top, size_t N, H Hash,
                     uint64_t Count, std::string_view Bytes) {
  bool Take = Top.size() < N;
  if (!Take) {
    const ClassSummary<H> &Worst = Top.back();
    Take = Count > Worst.Count ||
           (Count == Worst.Count &&
            (Hash < Worst.Hash ||
             (Hash == Worst.Hash && Bytes < Worst.CanonicalBytes)));
  }
  if (!Take)
    return;
  Top.push_back(ClassSummary<H>{Hash, Count, std::string(Bytes)});
  std::sort(Top.begin(), Top.end(), moreDuplicated<H>);
  if (Top.size() > N)
    Top.pop_back();
}

/// Which shard a hash maps to for a power-of-two shard count with mask
/// \p ShardMask. Shared by the live index, the `HMAI` writer and the
/// mapped reader: placement must be a pure function of the hash so that
/// a file's per-shard tables can be binary-searched by any of them.
/// Re-mixing before masking keeps the stripe choice independent of the
/// ByHash bucket choice in the live store.
template <typename H> unsigned shardIndexForHash(H Hash, unsigned ShardMask) {
  return static_cast<unsigned>(detail::splitmix64(HashCodeHasher{}(Hash)) &
                               ShardMask);
}

} // namespace detail

/// The read-side surface shared by every index backend.
template <typename H> class IndexReader {
public:
  virtual ~IndexReader() = default;

  /// Short backend tag for diagnostics ("live", "mapped", ...).
  virtual const char *backendName() const = 0;

  /// The hash-function family (seed); lookups only make sense against
  /// hashes produced under the same schema.
  virtual const HashSchema &schema() const = 0;

  virtual unsigned numShards() const = 0;
  virtual size_t numClasses() const = 0;

  /// Aggregate counters: ingest-time stats plus the fallback checks the
  /// read path itself has run.
  virtual IndexStats stats() const = 0;

  /// Name of the probe algorithm the batch read path would use:
  /// "hashtable" for the live in-memory store; "scalar" / "eytzinger" /
  /// "interleaved" for the mapped reader (see \ref ProbeEngine).
  /// Surfaced by `hma index ... stats` so ablation runs are
  /// self-describing.
  virtual const char *probeEngineName() const { return "hashtable"; }

  /// Number of classes per shard (for load-balance diagnostics).
  virtual std::vector<size_t> shardLoads() const = 0;

  /// Canonical-blob bytes per shard: the per-shard split of
  /// \ref retainedBytes, for skew diagnostics (`hma index stats --json`
  /// reports both per-shard vectors).
  virtual std::vector<size_t> shardBytes() const = 0;

  /// Bytes of canonical blobs the backend serves (resident for the live
  /// index, mapped for the file-backed one).
  virtual size_t retainedBytes() const = 0;

  /// Export every class, sorted by (hash, canonical bytes): a canonical
  /// owning value suitable for equality comparison across backends.
  virtual std::vector<ClassSummary<H>> snapshot() const = 0;

  /// The up-to-\p N most-duplicated classes, sorted by descending count
  /// (ties by ascending (hash, bytes)). Unlike \ref snapshot this
  /// copies only the winners' blobs -- an O(classes) scan materializing
  /// O(N) bytes, cheap even through the mapped reader.
  virtual std::vector<ClassSummary<H>> largestClasses(size_t N) const = 0;

  /// Find the class of \p Root, if present. \p Ctx is mutable because
  /// hashing requires distinct binders, which may force a uniquifying
  /// rewrite.
  virtual std::optional<LookupResult<H>> lookup(ExprContext &Ctx,
                                                const Expr *Root) = 0;

  /// Membership query in `ast/Serialize` format: decode into a scratch
  /// context and \ref lookup. One definition for every backend, so a
  /// behavior change (e.g. how undecodable query blobs are reported)
  /// cannot reach one read path and miss another.
  virtual std::optional<LookupResult<H>> lookupSerialized(
      std::string_view Bytes) {
    ExprContext Ctx;
    DeserializeResult R = deserializeExpr(Ctx, Bytes);
    if (!R.ok())
      return std::nullopt;
    return lookup(Ctx, R.E);
  }

  /// Bulk lookup of serialised expressions on \p Threads workers. Result
  /// i answers blob i; undecodable blobs yield std::nullopt, same as a
  /// miss.
  virtual std::vector<std::optional<LookupResult<H>>>
  lookupBatch(const std::vector<std::string> &Blobs, unsigned Threads) = 0;
};

} // namespace hma

#endif // HMA_INDEX_INDEXREADER_H
