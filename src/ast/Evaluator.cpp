//===- ast/Evaluator.cpp - Reference evaluator --------------------------------===//
///
/// \file
/// Call-by-value interpreter with closures and curried integer builtins.
///
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"

#include "support/Sanitizers.h"

#include "adt/PersistentMap.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace hma;

namespace {

enum class PrimOp : uint8_t { Add, Sub, Mul, Div, Neg, Min, Max };

struct Value;
using Env = PersistentMap<Name, uint32_t>; // name -> index into value heap

/// A runtime value. Closures capture their environment persistently.
struct Value {
  enum class Kind : uint8_t { Int, Closure, Prim } K = Kind::Int;
  int64_t Int = 0;          // Kind::Int, or first collected prim argument
  const Expr *Fun = nullptr; // Kind::Closure: the Lam node
  const Env *Captured = nullptr;
  PrimOp Op = PrimOp::Add; // Kind::Prim
  uint8_t Collected = 0;   // prim arguments collected so far
};

class Machine {
public:
  Machine(const ExprContext &Ctx, uint64_t Fuel) : Ctx(Ctx), Fuel(Fuel) {}

  EvalResult run(const Expr *E) {
    Env Empty(EnvArena);
    Value V;
    if (!eval(E, Empty, 0, V))
      return EvalResult::makeError(Error);
    if (V.K == Value::Kind::Int)
      return EvalResult::makeInt(V.Int);
    return EvalResult::makeClosure();
  }

private:
  // Up to two frames per level (eval + apply); scaled down under ASan
  // so the guard fires before the sanitizer-inflated stack runs out.
  static constexpr unsigned MaxDepth = scaledStackDepth(4096);

  const ExprContext &Ctx;
  uint64_t Fuel;
  Arena EnvArena;
  std::vector<Value> Heap;
  std::vector<std::unique_ptr<Env>> SavedEnvs;
  std::string Error;

  bool fail(std::string Msg) {
    if (Error.empty())
      Error = std::move(Msg);
    return false;
  }

  bool resolvePrim(std::string_view S, PrimOp &Op) {
    if (S == "add")
      Op = PrimOp::Add;
    else if (S == "sub")
      Op = PrimOp::Sub;
    else if (S == "mul")
      Op = PrimOp::Mul;
    else if (S == "div")
      Op = PrimOp::Div;
    else if (S == "neg")
      Op = PrimOp::Neg;
    else if (S == "min")
      Op = PrimOp::Min;
    else if (S == "max")
      Op = PrimOp::Max;
    else
      return false;
    return true;
  }

  /// Wrapping arithmetic (avoids signed-overflow UB; tests use values
  /// well within range, but generated programs may not).
  static int64_t wrapAdd(int64_t A, int64_t B) {
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  }
  static int64_t wrapSub(int64_t A, int64_t B) {
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  }
  static int64_t wrapMul(int64_t A, int64_t B) {
    return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                static_cast<uint64_t>(B));
  }

  bool applyPrim(const Value &F, const Value &Arg, Value &Out) {
    if (Arg.K != Value::Kind::Int)
      return fail("builtin applied to a non-integer");
    if (F.Op == PrimOp::Neg) {
      Out = Value();
      Out.Int = wrapSub(0, Arg.Int);
      return true;
    }
    if (F.Collected == 0) {
      Out = F;
      Out.Int = Arg.Int;
      Out.Collected = 1;
      return true;
    }
    int64_t A = F.Int, B = Arg.Int;
    Out = Value();
    switch (F.Op) {
    case PrimOp::Add:
      Out.Int = wrapAdd(A, B);
      break;
    case PrimOp::Sub:
      Out.Int = wrapSub(A, B);
      break;
    case PrimOp::Mul:
      Out.Int = wrapMul(A, B);
      break;
    case PrimOp::Div:
      if (B == 0)
        return fail("division by zero");
      if (A == INT64_MIN && B == -1)
        return fail("division overflow");
      Out.Int = A / B;
      break;
    case PrimOp::Min:
      Out.Int = std::min(A, B);
      break;
    case PrimOp::Max:
      Out.Int = std::max(A, B);
      break;
    case PrimOp::Neg:
      assert(false && "unary op handled above");
      return false;
    }
    return true;
  }

  bool apply(const Value &F, const Value &Arg, unsigned Depth, Value &Out) {
    if (F.K == Value::Kind::Prim)
      return applyPrim(F, Arg, Out);
    if (F.K != Value::Kind::Closure)
      return fail("applying a non-function");
    Heap.push_back(Arg);
    uint32_t Slot = static_cast<uint32_t>(Heap.size() - 1);
    SavedEnvs.push_back(std::make_unique<Env>(
        F.Captured->insert(F.Fun->lamBinder(), Slot)));
    return eval(F.Fun->lamBody(), *SavedEnvs.back(), Depth + 1, Out);
  }

  bool eval(const Expr *E, const Env &Scope, unsigned Depth, Value &Out) {
    if (Depth > MaxDepth)
      return fail("evaluation recurses too deeply");
    if (Fuel-- == 0)
      return fail("out of fuel (diverging term?)");

    switch (E->kind()) {
    case ExprKind::Const:
      Out = Value();
      Out.Int = E->constValue();
      return true;

    case ExprKind::Var: {
      if (const uint32_t *Slot = Scope.find(E->varName())) {
        Out = Heap[*Slot];
        return true;
      }
      PrimOp Op;
      if (resolvePrim(Ctx.names().spelling(E->varName()), Op)) {
        Out = Value();
        Out.K = Value::Kind::Prim;
        Out.Op = Op;
        return true;
      }
      return fail("unbound variable '" +
                  std::string(Ctx.names().spelling(E->varName())) + "'");
    }

    case ExprKind::Lam: {
      Out = Value();
      Out.K = Value::Kind::Closure;
      Out.Fun = E;
      SavedEnvs.push_back(std::make_unique<Env>(Scope));
      Out.Captured = SavedEnvs.back().get();
      return true;
    }

    case ExprKind::App: {
      Value F, A;
      if (!eval(E->appFun(), Scope, Depth + 1, F) ||
          !eval(E->appArg(), Scope, Depth + 1, A))
        return false;
      return apply(F, A, Depth, Out);
    }

    case ExprKind::Let: {
      Value Bound;
      if (!eval(E->letBound(), Scope, Depth + 1, Bound))
        return false;
      Heap.push_back(Bound);
      uint32_t Slot = static_cast<uint32_t>(Heap.size() - 1);
      SavedEnvs.push_back(std::make_unique<Env>(
          Scope.insert(E->letBinder(), Slot)));
      return eval(E->letBody(), *SavedEnvs.back(), Depth + 1, Out);
    }
    }
    assert(false && "covered switch");
    return false;
  }
};

} // namespace

EvalResult hma::evaluate(const ExprContext &Ctx, const Expr *E,
                         uint64_t Fuel) {
  if (!E)
    return EvalResult::makeError("null expression");
  Machine M(Ctx, Fuel);
  return M.run(E);
}
