//===- index/SegmentCompactor.cpp - Segmented-index maintenance helpers -----===//

#include "index/SegmentCompactor.h"

using namespace hma;

std::vector<std::string> hma::gcSegmentDir(const std::string &Dir,
                                           std::string *Error) {
  std::vector<std::string> Removed;
  std::string Bytes;
  if (!readFileBytes(manifestPathFor(Dir), Bytes, Error))
    return Removed;
  SegmentManifest M;
  if (!SegmentManifest::decode(Bytes, M, Error))
    return Removed;
  for (const std::string &Name : listUnreferencedSegments(Dir, M))
    if (std::remove((Dir + "/" + Name).c_str()) == 0)
      Removed.push_back(Name);
  return Removed;
}
