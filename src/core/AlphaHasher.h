//===- core/AlphaHasher.h - Hashing modulo alpha-equivalence ---------------===//
///
/// \file
/// The paper's headline algorithm (Sections 4.8 + 5): compositional
/// hashing of every subexpression modulo alpha-equivalence in
/// O(n (log n)^2) time.
///
/// This is the Step 2 realisation of the invertible e-summaries of
/// `summary/ESummary.h`:
///
///  - Structures and position trees are represented *by their hash codes*
///    (Section 5.1): the datatype constructors become O(1) salted hash
///    combiners and no tree is ever materialised.
///  - The variable map is an \ref AvlMap from free variable to the hash
///    code of its position tree, paired with the XOR of its entry hashes
///    (Section 5.2). XOR's commutativity/invertibility makes insertion,
///    alteration and removal O(1) on the aggregate; Lemma 6.5/6.6 and
///    Theorem 6.7 bound the collision cost of this one weak combiner.
///  - At each App/Let the *smaller* child map is folded into the bigger
///    one (Section 4.8), with moved entries re-hashed through a PTJoin
///    combiner salted with the node's StructureTag (we use the subtree
///    node count, which is strictly larger than any substructure's).
///
/// The hash of a node is hash(structure-hash, varmap-aggregate); two
/// subexpressions receive equal hashes iff they are alpha-equivalent,
/// except for collisions with probability <= 5(|e1|+|e2|)/2^b
/// (Theorem 6.7).
///
/// The class is templated over the hash code type so the Appendix B
/// collision study can run the genuine algorithm at b=16 (collisions must
/// propagate through the real data flow; truncating wider hashes after
/// the fact would not reproduce the adversarial behaviour).
///
/// Precondition (Section 2.2): every binder in the input is distinct.
/// Establish it with \ref uniquifyBinders; debug builds assert it.
///
//===----------------------------------------------------------------------===//

#ifndef HMA_CORE_ALPHAHASHER_H
#define HMA_CORE_ALPHAHASHER_H

#include "adt/AvlMap.h"
#include "ast/Expr.h"
#include "ast/Traversal.h"
#include "support/HashSchema.h"

#include <cassert>
#include <optional>
#include <vector>

namespace hma {

/// Operation counters, exposed so tests can check Lemma 6.1/6.2 (the
/// total number of variable-map operations is O(n log n)) empirically.
struct AlphaHashStats {
  uint64_t MapSingletons = 0; ///< Var leaves (one singleton each).
  uint64_t MapRemoves = 0;    ///< Binder removals (Lam / Let).
  uint64_t MapAlters = 0;     ///< Entries moved by smaller-into-bigger.

  uint64_t totalMapOps() const {
    return MapSingletons + MapRemoves + MapAlters;
  }
};

/// Hashes all subexpressions of an expression modulo alpha-equivalence.
template <typename H> class AlphaHasher {
public:
  /// \p Ctx must own every expression later passed to hashAll.
  explicit AlphaHasher(const ExprContext &Ctx,
                       const HashSchema &Schema = HashSchema())
      : Ctx(Ctx), Schema(Schema) {}

  /// Hash every subexpression of \p Root. The result vector is indexed by
  /// node id (size = Ctx.numNodes(); ids outside \p Root keep H{}).
  std::vector<H> hashAll(const Expr *Root) {
    std::vector<H> Out(Ctx.numNodes());
    run(Root, &Out);
    return Out;
  }

  /// Hash \p Root only (same pass, no per-node output vector).
  H hashRoot(const Expr *Root) { return run(Root, nullptr); }

  /// Counters accumulated over all calls since construction/reset.
  const AlphaHashStats &stats() const { return Stats; }
  void resetStats() { Stats = AlphaHashStats(); }

  /// The salted hash of a variable name's spelling (exposed for reuse by
  /// the incremental hasher and tests). Cached per name: O(1) amortised.
  H nameHash(Name N) {
    if (N >= NameHashes.size()) {
      NameHashes.resize(Ctx.names().size());
      NameHashValid.resize(Ctx.names().size(), false);
    }
    if (!NameHashValid[N]) {
      std::string_view S = Ctx.names().spelling(N);
      NameHashes[N] =
          Schema.hashBytes<H>(CombinerTag::NameLeaf, S.data(), S.size());
      NameHashValid[N] = true;
    }
    return NameHashes[N];
  }

  /// hash of a (variable, position-tree) pair -- `entryHash` of
  /// Section 5.2.
  H entryHash(Name V, H Pos) {
    return Schema.combine<H>(CombinerTag::VarMapEntry, nameHash(V), Pos);
  }

  const HashSchema &schema() const { return Schema; }

private:
  using Map = AvlMap<Name, H>;
  using Pool = typename Map::Pool;

  /// A hashed variable map: the paper's `VM (Map Name PosTree) HashCode`
  /// with the hash maintained as the XOR of entry hashes.
  struct VM {
    Map M;
    H Agg{};
    explicit VM(Pool &P) : M(P) {}
    VM(VM &&) = default;
    VM &operator=(VM &&) = default;
  };

  /// Per-child partial result on the value stack.
  struct Entry {
    H Struct; ///< Hash code standing for the Structure (Section 5.1).
    VM Vars;
    Entry(H Struct, VM &&Vars) : Struct(Struct), Vars(std::move(Vars)) {}
  };

  const ExprContext &Ctx;
  HashSchema Schema;
  AlphaHashStats Stats;
  std::vector<H> NameHashes;
  std::vector<uint8_t> NameHashValid;

  H run(const Expr *Root, std::vector<H> *Out) {
    assert(Root && "nothing to hash");
    assert(hasDistinctBinders(Ctx, Root) &&
           "hashing requires distinct binders; run uniquifyBinders first");

    Pool P;
    std::vector<Entry> Values;
    const H HereHash = Schema.combineWords<H>(CombinerTag::PosHere, 0);
    H NodeHash{};

    PostorderWorklist Work(Root);
    while (const Expr *E = Work.next()) {
      switch (E->kind()) {
      case ExprKind::Var: {
        // summariseExpr (Var v) = ESummary mkSVar (singletonVM v mkPTHere)
        VM Vars(P);
        Vars.M.set(E->varName(), HereHash);
        Vars.Agg = entryHash(E->varName(), HereHash);
        ++Stats.MapSingletons;
        Values.emplace_back(
            Schema.combineWords<H>(CombinerTag::StructVar, 1), // |d| salt
            std::move(Vars));
        break;
      }

      case ExprKind::Const: {
        VM Vars(P);
        H CH = Schema.combineWords<H>(CombinerTag::ConstLeaf,
                                      static_cast<uint64_t>(E->constValue()));
        Values.emplace_back(
            Schema.combine<H>(CombinerTag::StructConst, CH), std::move(Vars));
        break;
      }

      case ExprKind::Lam: {
        // summariseExpr (Lam x e): remove x from the body's map; its
        // position-tree hash becomes part of the structure.
        Entry Body = std::move(Values.back());
        Values.pop_back();
        std::optional<H> Pos = vmRemove(Body.Vars, E->lamBinder());
        uint64_t Size = E->treeSize();
        H St = Pos ? Schema.combine<H>(CombinerTag::StructLamSome,
                                       sizeSalt(Size), *Pos, Body.Struct)
                   : Schema.combine<H>(CombinerTag::StructLamNone,
                                       sizeSalt(Size), Body.Struct);
        Values.emplace_back(St, std::move(Body.Vars));
        break;
      }

      case ExprKind::App: {
        Entry Arg = std::move(Values.back());
        Values.pop_back();
        Entry Fun = std::move(Values.back());
        Values.pop_back();
        Values.push_back(combineBinary(E, std::move(Fun), std::move(Arg),
                                       std::nullopt,
                                       CombinerTag::StructApp,
                                       CombinerTag::StructApp));
        break;
      }

      case ExprKind::Let: {
        Entry Body = std::move(Values.back());
        Values.pop_back();
        Entry Bound = std::move(Values.back());
        Values.pop_back();
        // The binder scopes over the body only: take its occurrences out
        // before the merge (they are positions within the body).
        std::optional<H> Pos = vmRemove(Body.Vars, E->letBinder());
        Values.push_back(combineBinary(E, std::move(Bound), std::move(Body),
                                       Pos, CombinerTag::StructLetNone,
                                       CombinerTag::StructLetSome));
        break;
      }
      }

      // hashESummary: pair up the structure hash and the map hash.
      Entry &Top = Values.back();
      NodeHash = Schema.combine<H>(CombinerTag::SummaryPair, Top.Struct,
                                   Top.Vars.Agg);
      if (Out)
        (*Out)[E->id()] = NodeHash;
    }
    assert(Values.size() == 1 && "postorder fold must yield one summary");
    return NodeHash;
  }

  /// Lemma 6.6 salts every combiner call with the size |d| of the object
  /// being built; we feed the subtree size into the mix as a pseudo-part.
  static H sizeSalt(uint64_t Size) { return hashFromWord(Size); }

  static H hashFromWord(uint64_t W) {
    if constexpr (HashWidth<H>::Bits == 128)
      return H(0, W);
    else
      return H(static_cast<decltype(H{}.V)>(W));
  }

  /// Shared App/Let combination: structure hash + smaller-into-bigger
  /// variable map merge (Section 4.8).
  Entry combineBinary(const Expr *E, Entry Left, Entry Right,
                      std::optional<H> BinderPos, CombinerTag NoneTag,
                      CombinerTag SomeTag) {
    bool LeftBigger = Left.Vars.M.size() >= Right.Vars.M.size();
    uint64_t Size = E->treeSize();

    H St;
    if (BinderPos)
      St = Schema.combine<H>(SomeTag, sizeSalt(Size),
                             hashFromWord(LeftBigger), *BinderPos,
                             Left.Struct, Right.Struct);
    else
      St = Schema.combine<H>(NoneTag, sizeSalt(Size),
                             hashFromWord(LeftBigger), Left.Struct,
                             Right.Struct);

    // structureTag (Section 4.8): any value strictly larger than every
    // substructure's tag works; the subtree node count is free.
    uint64_t Tag = Size;

    VM &Big = LeftBigger ? Left.Vars : Right.Vars;
    VM &Small = LeftBigger ? Right.Vars : Left.Vars;

    // add_kv: move every entry of the smaller map into the bigger one,
    // wrapping it in a tagged PTJoin hash. Work here is proportional to
    // the *smaller* map only -- the crux of Lemma 6.1.
    Small.M.forEach([&](Name V, const H &SmallPos) {
      vmAlter(Big, V, [&](const H *BigPos) {
        return BigPos ? Schema.combine<H>(CombinerTag::PosJoinSome,
                                          hashFromWord(Tag), *BigPos,
                                          SmallPos)
                      : Schema.combine<H>(CombinerTag::PosJoinNone,
                                          hashFromWord(Tag), SmallPos);
      });
    });
    Small.M.clear();

    return Entry(St, std::move(Big));
  }

  /// alterVM with XOR bookkeeping (Section 5.2).
  template <typename F> void vmAlter(VM &Vars, Name V, F &&MakeNew) {
    ++Stats.MapAlters;
    Vars.M.alter(V, [&](H *Old) {
      H NewPos = MakeNew(static_cast<const H *>(Old));
      if (Old)
        Vars.Agg ^= entryHash(V, *Old);
      Vars.Agg ^= entryHash(V, NewPos);
      return NewPos;
    });
  }

  /// removeFromVM with XOR bookkeeping (Section 5.2).
  std::optional<H> vmRemove(VM &Vars, Name V) {
    ++Stats.MapRemoves;
    std::optional<H> Old = Vars.M.remove(V);
    if (Old)
      Vars.Agg ^= entryHash(V, *Old);
    return Old;
  }
};

} // namespace hma

#endif // HMA_CORE_ALPHAHASHER_H
