//===- examples/compiler_pipeline.cpp - Everything, end to end ----------------===//
///
/// \file
/// A miniature compiler front-end pass pipeline exercising every public
/// API in sequence, the way a real adopter would compose them:
///
///   parse -> uniquify (Section 2.2) -> alpha-hash (the paper's
///   algorithm) -> equivalence classes -> pattern queries -> CSE ->
///   incremental rehash across a rewrite -> structure sharing ->
///   serialize, reload, verify fingerprints.
///
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "ast/Serialize.h"
#include "ast/Uniquify.h"
#include "core/AlphaHasher.h"
#include "core/IncrementalHasher.h"
#include "cse/CSE.h"
#include "eqclass/EquivClasses.h"
#include "eqclass/PatternSearch.h"
#include "share/StructureSharing.h"

#include <cstdio>

using namespace hma;

int main() {
  ExprContext Ctx;

  // A small numeric kernel with alpha-equivalent repeats: two "norm"
  // blocks under different binder names, plus a repeated open term.
  const char *Source =
      "(let (n1 (let (s (add (mul x x) (mul y y))) (div s 2)))"
      " (let (n2 (let (t (add (mul x x) (mul y y))) (div t 2)))"
      "  (sub (mul n1 n2) (add (mul x x) (mul y y)))))";
  std::printf("== source ==\n%s\n\n", Source);
  const Expr *Program = parseOrDie(Ctx, Source);

  // 1. Preprocess (Section 2.2): distinct binders.
  Program = uniquifyBinders(Ctx, Program);

  // 2. Hash all subexpressions modulo alpha.
  AlphaHasher<Hash128> Hasher(Ctx);
  std::vector<Hash128> Hashes = Hasher.hashAll(Program);
  PartitionStats Stats = partitionStats(Program, Hashes);
  std::printf("== analysis ==\n%zu subexpressions, %zu alpha classes, "
              "%zu repeated\n",
              Stats.NumSubexpressions, Stats.NumClasses,
              Stats.NumRepeatedClasses);

  // 3. Query: where does (mul x x) happen, whatever the binders?
  const Expr *Pattern = parseOrDie(Ctx, "(mul x x)");
  auto Matches = findAlphaEquivalent(Ctx, Program, Pattern);
  std::printf("pattern (mul x x) occurs %zu times\n\n", Matches.size());

  // 4. Optimise: CSE modulo alpha.
  CSEResult Cse = eliminateCommonSubexpressions(Ctx, Program);
  std::printf("== after CSE ==\n%s\n(%u -> %u nodes, %u lets)\n\n",
              printExpr(Ctx, Cse.Root).c_str(), Cse.SizeBefore,
              Cse.SizeAfter, Cse.LetsInserted);

  // 5. Keep hashes fresh across a local rewrite (Section 6.3).
  IncrementalHasher<Hash128> Inc(Ctx, Cse.Root);
  const Expr *Site = nullptr;
  preorder(Cse.Root, [&](const Expr *E) {
    if (!Site && E->kind() == ExprKind::Const && E->constValue() == 2)
      Site = E;
  });
  if (Site) {
    Inc.replaceSubtree(Site, Ctx.intConst(4));
    std::printf("== incremental rewrite (2 -> 4) ==\nrehashed %llu spine "
                "nodes (tree has %u)\nnew root hash %s\n\n",
                static_cast<unsigned long long>(
                    Inc.lastStats().PathNodesRehashed),
                Inc.root()->treeSize(), Inc.rootHash().toHex().c_str());
  }

  // 6. Structure sharing for storage.
  SharingStats Share;
  const Expr *Dag = shareStructurally(Ctx, Inc.root(), &Share);
  std::printf("== structure sharing ==\n%u tree nodes -> %u DAG nodes "
              "(%.2fx)\n\n",
              Share.TreeNodes, Share.UniqueNodes, Share.syntacticRatio());
  (void)Dag;

  // 7. Persist and reload elsewhere: fingerprints survive.
  std::string Bytes = serializeExpr(Ctx, Inc.root());
  ExprContext Elsewhere;
  DeserializeResult Loaded = deserializeExpr(Elsewhere, Bytes);
  if (!Loaded.ok()) {
    std::printf("reload failed: %s\n", Loaded.Error.c_str());
    return 1;
  }
  AlphaHasher<Hash128> TheirHasher(Elsewhere);
  Hash128 Theirs = TheirHasher.hashRoot(Loaded.E);
  std::printf("== serialize/reload ==\n%zu bytes; fingerprint %s "
              "(%s)\n",
              Bytes.size(), Theirs.toHex().c_str(),
              Theirs == Inc.rootHash() ? "stable across contexts"
                                       : "MISMATCH");
  return 0;
}
