//===- bench/indexd_latency.cpp - daemon round-trip latency ------------------===//
///
/// \file
/// What does putting a Unix socket between the caller and the index
/// cost? An in-process `serve::Server` is started on a temporary
/// socket, a `serve::Client` sends batch lookups, and per-request
/// round-trip latency (encode, send, serve, reply, decode) is sampled
/// against the same batch answered by a direct in-process
/// `MappedIndex::lookupBatch` over the same file.
///
/// Output: a human table plus machine-readable rows
///   CSV,indexd_roundtrip,<batch>,<requests>,<p50_us>,<p99_us>,<inproc_p50_us>,<inproc_p99_us>,<queries_per_sec>
///
/// one row per batch size. `HMA_BENCH_FULL=1` scales the corpus and
/// request counts up; on platforms without Unix sockets the binary
/// prints a skip notice and exits 0 (CI greps for the CSV row only on
/// Unix).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ast/Serialize.h"
#include "gen/RandomExpr.h"
#include "index/AlphaHashIndex.h"
#include "index/IndexIO.h"
#include "index/MappedIndex.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace hma;
using namespace hma::bench;

namespace {

std::vector<std::string> makeCorpus(size_t Count, uint32_t Size,
                                    uint64_t Seed) {
  std::vector<std::string> Blobs;
  Blobs.reserve(Count);
  Rng R(Seed);
  ExprContext Ctx;
  for (size_t I = 0; I != Count; ++I)
    Blobs.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, Size)));
  return Blobs;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * static_cast<double>(Sorted.size() - 1));
  return Sorted[I];
}

} // namespace

int main() {
  if (!serve::serverSupported()) {
    std::printf("indexd latency bench: no Unix sockets on this platform, "
                "skipping\n");
    return 0;
  }

  const size_t CorpusSize = fullMode() ? 20000 : 2000;
  const int Requests = fullMode() ? 2000 : 400;
  std::vector<std::string> Corpus = makeCorpus(CorpusSize, 25, 42);

  const std::string Path = "bench_indexd.hmai";
  const std::string Sock = "bench_indexd.sock";
  {
    AlphaHashIndex<> Live({64, HashSchema::DefaultSeed});
    Live.insertBatch(Corpus, 1);
    std::string Error;
    if (!writeFileReplacing(Path, saveIndexBytes(Live), &Error)) {
      std::fprintf(stderr, "ERROR: %s\n", Error.c_str());
      return 1;
    }
  }

  auto Mapped = MappedIndex<Hash128>::open(Path);
  if (!Mapped.ok()) {
    std::fprintf(stderr, "ERROR: %s\n", Mapped.Error.c_str());
    return 1;
  }

  serve::ServerOptions SO;
  SO.IndexPath = Path;
  SO.UnixSocketPath = Sock;
  SO.Threads = 2;
  serve::Server Daemon(SO);
  std::string Error;
  if (!Daemon.start(&Error)) {
    std::fprintf(stderr, "ERROR: start: %s\n", Error.c_str());
    return 1;
  }

  serve::ClientOptions CO;
  CO.UnixSocketPath = Sock;
  serve::Client C(CO);

  std::printf("indexd round-trip latency: %zu-class index, %d requests "
              "per batch size, 1 connection\n",
              Corpus.size(), Requests);

  for (size_t Batch : {size_t(1), size_t(16), size_t(128)}) {
    std::vector<std::string> Queries(Corpus.begin(),
                                     Corpus.begin() +
                                         std::min(Batch, Corpus.size()));

    // Warm both paths (connection, hasher pools, page cache).
    std::vector<serve::WireLookup> Got;
    if (!C.lookupBatch(Queries, Got, &Error)) {
      std::fprintf(stderr, "ERROR: %s\n", Error.c_str());
      return 1;
    }
    Mapped.Reader->lookupBatch(Queries, 1);

    std::vector<double> WireUs, InprocUs;
    WireUs.reserve(static_cast<size_t>(Requests));
    InprocUs.reserve(static_cast<size_t>(Requests));
    size_t WireHits = 0, InprocHits = 0;
    for (int I = 0; I != Requests; ++I) {
      double T = timeOnce([&] {
        if (!C.lookupBatch(Queries, Got, &Error)) {
          std::fprintf(stderr, "ERROR: %s\n", Error.c_str());
          std::exit(1);
        }
      });
      WireUs.push_back(T * 1e6);
      for (const serve::WireLookup &R : Got)
        WireHits += R.Present;
      T = timeOnce([&] {
        for (const auto &R : Mapped.Reader->lookupBatch(Queries, 1))
          InprocHits += R.has_value();
      });
      InprocUs.push_back(T * 1e6);
    }
    if (WireHits != InprocHits)
      std::printf("ERROR: wire hits %zu != in-process hits %zu\n", WireHits,
                  InprocHits);

    std::sort(WireUs.begin(), WireUs.end());
    std::sort(InprocUs.begin(), InprocUs.end());
    double P50 = percentile(WireUs, 0.50), P99 = percentile(WireUs, 0.99);
    double IP50 = percentile(InprocUs, 0.50),
           IP99 = percentile(InprocUs, 0.99);
    double TotalSec = 0;
    for (double U : WireUs)
      TotalSec += U / 1e6;
    double Rate = TotalSec > 0 ? static_cast<double>(Queries.size()) *
                                     Requests / TotalSec
                               : 0;
    std::printf("  batch %4zu: wire p50 %8.1f us  p99 %8.1f us   "
                "in-process p50 %8.1f us  p99 %8.1f us   (%.0f queries/sec "
                "over the socket)\n",
                Queries.size(), P50, P99, IP50, IP99, Rate);
    std::printf("CSV,indexd_roundtrip,%zu,%d,%.1f,%.1f,%.1f,%.1f,%.0f\n",
                Queries.size(), Requests, P50, P99, IP50, IP99, Rate);
  }

  C.close();
  Daemon.requestStop();
  int RC = Daemon.waitForExit();
  if (RC != 0)
    std::printf("ERROR: daemon exited %d\n", RC);
  std::remove(Path.c_str());
  return 0;
}
