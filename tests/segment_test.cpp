//===- tests/segment_test.cpp - Segmented-index layout and semantics --------===//
///
/// \file
/// The segmented-index contract, in four parts:
///
///  1. **Manifest codec adversarial sweep**: every torn, bit-flipped or
///     malformed `MANIFEST` is rejected before any segment is touched
///     (truncation at every byte, checksum flips, bad magic/version,
///     path-shaped segment names, trailing garbage).
///  2. **Open acceptance parity**: `SegmentSet::open` rejects a manifest
///     naming a missing, resized or incompatible segment with the same
///     decisiveness, while *unreferenced* segment files are ignored and
///     reported (the crash-window rule: the manifest is the single
///     source of truth).
///  3. **The differential battery**: a segmented index built as
///     create + append + append answers byte-identically -- lookups,
///     batch lookups, snapshots, stats -- to a single `HMAI` file built
///     from the same corpus in the same order, at b=128 and under
///     forced b=16 collisions, both before and after compaction.
///  4. **Crash-window + saturation + background compaction**: the
///     simulated crash between segment write and manifest swap leaves a
///     servable old index plus one collectable orphan; cross-segment
///     count sums clamp at u64 instead of wrapping; and a background
///     \ref SegmentCompactor merges under a live reader whose pinned
///     mappings keep answering after the old files are unlinked.
///
//===----------------------------------------------------------------------===//

#include "index/SegmentCompactor.h"

#include "ast/AlphaEquivalence.h"
#include "ast/Serialize.h"
#include "ast/Uniquify.h"
#include "gen/RandomExpr.h"
#include "index/IndexIO.h"
#include "index/SegmentManifest.h"
#include "index/SegmentSet.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#include <sys/time.h>
#include <unistd.h>
#endif

using namespace hma;

namespace {

/// A self-cleaning segmented-index directory: every file the manifest
/// names, every orphan, the manifest and the directory itself vanish
/// when the fixture goes out of scope (tests may fail mid-way; later
/// suites must not see the leftovers).
struct TempSegmentDir {
  std::string Dir;

  explicit TempSegmentDir(std::string Name) : Dir(std::move(Name)) {}
  ~TempSegmentDir() {
    std::string Bytes;
    SegmentManifest M;
    if (readFileBytes(manifestPathFor(Dir), Bytes, nullptr) &&
        SegmentManifest::decode(Bytes, M))
      for (const SegmentEntry &E : M.Segments)
        std::remove((Dir + "/" + E.Name).c_str());
    GcOptions Now;
    Now.MinAgeSeconds = 0; // cleanup: no writer can be in flight here
    gcSegmentDir(Dir, nullptr, Now);
    std::remove(manifestPathFor(Dir).c_str());
#if defined(__unix__) || defined(__APPLE__)
    ::rmdir(Dir.c_str());
#endif
  }
};

/// Mostly-unique corpus with a sprinkle of alpha-renamed duplicates.
std::vector<std::string> corpus(ExprContext &Ctx, Rng &R, int N) {
  std::vector<std::string> Blobs;
  const Expr *Prev = nullptr;
  for (int I = 0; I != N; ++I) {
    const Expr *E = genBalanced(Ctx, R, 18 + I % 11);
    Blobs.push_back(serializeExpr(Ctx, E));
    if (I % 5 == 0 && Prev)
      Blobs.push_back(serializeExpr(Ctx, alphaRename(Ctx, R, Prev)));
    Prev = E;
  }
  return Blobs;
}

/// The four header-stat fields append-time reconciliation guarantees
/// across the segment/single-file divide. (FallbackChecks and
/// VerifiedCollisions are runtime probe counters -- the segmented
/// reader's reconcile probes legitimately bump them differently.)
void expectIngestStatsEq(const IndexStats &A, const IndexStats &B) {
  EXPECT_EQ(A.Inserted, B.Inserted);
  EXPECT_EQ(A.NewClasses, B.NewClasses);
  EXPECT_EQ(A.Duplicates, B.Duplicates);
  EXPECT_EQ(A.DecodeErrors, B.DecodeErrors);
}

/// Build `Dir` as create(Base) + append(Delta1) + append(Delta2) and the
/// equivalent single-file index from the concatenated corpus, ingested
/// in the same order. Returns the reference index.
template <typename H>
std::unique_ptr<AlphaHashIndex<H>>
buildBoth(const std::string &Dir, const std::vector<std::string> &Base,
          const std::vector<std::string> &Delta1,
          const std::vector<std::string> &Delta2, unsigned Shards) {
  typename AlphaHashIndex<H>::Options Opts;
  Opts.Shards = Shards;
  AlphaHashIndex<H> BaseIdx(Opts);
  BaseIdx.insertBatch(Base, 1);
  SegmentAppendResult C = createSegmentDir(Dir, BaseIdx);
  EXPECT_TRUE(C.Ok) << C.Error;
  SegmentAppendOptions AOpts;
  AOpts.Shards = Shards;
  SegmentAppendResult A1 = appendSegment<H>(Dir, Delta1, AOpts);
  EXPECT_TRUE(A1.Ok) << A1.Error;
  SegmentAppendResult A2 = appendSegment<H>(Dir, Delta2, AOpts);
  EXPECT_TRUE(A2.Ok) << A2.Error;

  auto Ref = std::make_unique<AlphaHashIndex<H>>(Opts);
  Ref->insertBatch(Base, 1);
  Ref->insertBatch(Delta1, 1);
  Ref->insertBatch(Delta2, 1);
  return Ref;
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Manifest codec: round-trip and adversarial sweep
//===----------------------------------------------------------------------===//

namespace {

SegmentManifest sampleManifest() {
  SegmentManifest M;
  M.Seed = 0x1234abcd5678ef00ull;
  M.HashBits = 128;
  M.NextId = 7;
  M.Segments.push_back(SegmentEntry{"seg-000006.hmai", 4096, 100, 40});
  M.Segments.push_back(SegmentEntry{"seg-000001.hmai", 65536, 900, 900});
  return M;
}

} // namespace

TEST(SegmentManifest, EncodeDecodeRoundTripsEveryField) {
  SegmentManifest M = sampleManifest();
  std::string Bytes = M.encode();

  SegmentManifest Out;
  std::string Error;
  size_t ErrorPos = 0;
  ASSERT_TRUE(SegmentManifest::decode(Bytes, Out, &Error, &ErrorPos))
      << Error << " at byte " << ErrorPos;
  EXPECT_EQ(Out.Version, smf::Version);
  EXPECT_EQ(Out.Seed, M.Seed);
  EXPECT_EQ(Out.HashBits, M.HashBits);
  EXPECT_EQ(Out.NextId, M.NextId);
  ASSERT_EQ(Out.Segments.size(), 2u);
  for (size_t I = 0; I != 2; ++I) {
    EXPECT_EQ(Out.Segments[I].Name, M.Segments[I].Name);
    EXPECT_EQ(Out.Segments[I].FileBytes, M.Segments[I].FileBytes);
    EXPECT_EQ(Out.Segments[I].Classes, M.Segments[I].Classes);
    EXPECT_EQ(Out.Segments[I].Fresh, M.Segments[I].Fresh);
  }
  EXPECT_EQ(Out.totalClasses(), 940u);
}

TEST(SegmentManifest, EveryTruncationIsRejected) {
  std::string Bytes = sampleManifest().encode();
  SegmentManifest Out;
  for (size_t Len = 0; Len != Bytes.size(); ++Len)
    EXPECT_FALSE(
        SegmentManifest::decode(std::string_view(Bytes.data(), Len), Out))
        << "truncation to " << Len << " of " << Bytes.size()
        << " bytes was accepted";
}

TEST(SegmentManifest, EverySingleBitFlipIsRejected) {
  // The tail checksum covers every preceding byte, and flips *in* the
  // checksum mismatch the recomputation: no single-bit corruption
  // anywhere in the file can decode.
  std::string Bytes = sampleManifest().encode();
  SegmentManifest Out;
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Flipped = Bytes;
    Flipped[I] = static_cast<char>(Flipped[I] ^ 0x10);
    EXPECT_FALSE(SegmentManifest::decode(Flipped, Out))
        << "bit flip at byte " << I << " was accepted";
  }
}

TEST(SegmentManifest, BadMagicIsRejectedAtByteZero) {
  std::string Bytes = sampleManifest().encode();
  Bytes[0] = 'X';
  SegmentManifest Out;
  std::string Error;
  size_t ErrorPos = 99;
  EXPECT_FALSE(SegmentManifest::decode(Bytes, Out, &Error, &ErrorPos));
  EXPECT_EQ(ErrorPos, 0u);
}

TEST(SegmentManifest, UnsupportedVersionIsRejectedWithValidChecksum) {
  // A future-versioned manifest with an *intact* checksum must still be
  // refused: rebuild the checksum over the bumped version so the
  // version gate (not the integrity gate) is what fires.
  std::string Bytes = sampleManifest().encode();
  Bytes[4] = 99; // version u32 LE at offset 4
  std::string Body = Bytes.substr(0, Bytes.size() - smf::ChecksumSize);
  uint64_t Sum = fnv1a64(Body);
  for (size_t I = 0; I != smf::ChecksumSize; ++I)
    Body.push_back(static_cast<char>((Sum >> (8 * I)) & 0xff));
  SegmentManifest Out;
  std::string Error;
  EXPECT_FALSE(SegmentManifest::decode(Body, Out, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(SegmentManifest, PathShapedSegmentNamesAreRejected) {
  for (const char *Evil :
       {"../escape.hmai", "sub/dir.hmai", "..", ".", "a\\b.hmai"}) {
    SegmentManifest M = sampleManifest();
    M.Segments[0].Name = Evil;
    SegmentManifest Out;
    std::string Error;
    EXPECT_FALSE(SegmentManifest::decode(M.encode(), Out, &Error))
        << "name '" << Evil << "' was accepted";
  }
}

TEST(SegmentManifest, TrailingBytesAfterChecksumAreRejected) {
  std::string Bytes = sampleManifest().encode();
  Bytes.push_back('\0');
  SegmentManifest Out;
  EXPECT_FALSE(SegmentManifest::decode(Bytes, Out));
}

TEST(SegmentManifest, TotalClassesSaturatesInsteadOfWrapping) {
  SegmentManifest M;
  M.Segments.push_back(SegmentEntry{"a", 0, 0, UINT64_MAX - 10});
  M.Segments.push_back(SegmentEntry{"b", 0, 0, 100});
  EXPECT_EQ(M.totalClasses(), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(saturatingAdd(5, 7), 12u);
}

//===----------------------------------------------------------------------===//
// 2. SegmentSet::open acceptance parity
//===----------------------------------------------------------------------===//

namespace {

/// A tiny two-segment directory (base + one delta) for the open sweep.
struct SmallDir : TempSegmentDir {
  std::vector<std::string> Base, Delta;

  explicit SmallDir(const char *Name) : TempSegmentDir(Name) {
    ExprContext Ctx;
    Rng R(501);
    Base = corpus(Ctx, R, 30);
    Delta = corpus(Ctx, R, 10);
    AlphaHashIndex<> BaseIdx({/*Shards=*/8, HashSchema::DefaultSeed});
    BaseIdx.insertBatch(Base, 1);
    SegmentAppendResult C = createSegmentDir(Dir, BaseIdx);
    EXPECT_TRUE(C.Ok) << C.Error;
    SegmentAppendOptions Opts;
    Opts.Shards = 8;
    SegmentAppendResult A = appendSegment<Hash128>(Dir, Delta, Opts);
    EXPECT_TRUE(A.Ok) << A.Error;
  }

  SegmentManifest manifest() const {
    std::string Bytes;
    SegmentManifest M;
    EXPECT_TRUE(readFileBytes(manifestPathFor(Dir), Bytes, nullptr));
    EXPECT_TRUE(SegmentManifest::decode(Bytes, M));
    return M;
  }
};

} // namespace

TEST(SegmentSet, MissingManifestAndMissingSegmentAreRejected) {
  auto NoDir = SegmentSet<>::open("segment_test.no_such_dir.tmp");
  EXPECT_FALSE(NoDir.ok());
  EXPECT_FALSE(isSegmentDir("segment_test.no_such_dir.tmp"));

  SmallDir D("segment_test.missing.tmp");
  EXPECT_TRUE(isSegmentDir(D.Dir));
  SegmentManifest M = D.manifest();
  ASSERT_EQ(M.Segments.size(), 2u);
  std::string Victim = D.Dir + "/" + M.Segments[0].Name;
  ASSERT_EQ(std::remove(Victim.c_str()), 0);

  auto R = SegmentSet<>::open(D.Dir);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find(M.Segments[0].Name), std::string::npos) << R.Error;
}

TEST(SegmentSet, SizeClassAndSeedMismatchesAreRejected) {
  SmallDir D("segment_test.mismatch.tmp");
  SegmentManifest Good = D.manifest();

  {
    SegmentManifest M = Good;
    M.Segments[0].FileBytes += 1;
    ASSERT_TRUE(writeManifestReplacing(D.Dir, M));
    auto R = SegmentSet<>::open(D.Dir);
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.Error.find("bytes"), std::string::npos) << R.Error;
  }
  {
    SegmentManifest M = Good;
    M.Segments[1].Classes += 1;
    ASSERT_TRUE(writeManifestReplacing(D.Dir, M));
    auto R = SegmentSet<>::open(D.Dir);
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.Error.find("classes"), std::string::npos) << R.Error;
  }
  {
    SegmentManifest M = Good;
    M.Seed ^= 1;
    ASSERT_TRUE(writeManifestReplacing(D.Dir, M));
    auto R = SegmentSet<>::open(D.Dir);
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.Error.find("seed"), std::string::npos) << R.Error;
  }
  {
    SegmentManifest M = Good;
    M.Segments.clear();
    ASSERT_TRUE(writeManifestReplacing(D.Dir, M));
    auto R = SegmentSet<>::open(D.Dir);
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.ErrorPos, 20u); // the entry-count field
  }
  // A b=128 directory opened by a b=16 reader: width gate, byte 16.
  ASSERT_TRUE(writeManifestReplacing(D.Dir, Good));
  auto Wrong = SegmentSet<Hash16>::open(D.Dir);
  EXPECT_FALSE(Wrong.ok());
  EXPECT_EQ(Wrong.ErrorPos, 16u);

  // And the restored good manifest still opens and deep-verifies.
  auto R = SegmentSet<>::open(D.Dir);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Set->verify());
  EXPECT_EQ(R.Set->numSegments(), 2u);
}

TEST(SegmentSet, UnreferencedSegmentsAreReportedAndGcCollectsThem) {
  SmallDir D("segment_test.orphan.tmp");
  // Plant a stray segment-shaped file the manifest does not know.
  ASSERT_TRUE(writeFileReplacing(D.Dir + "/" + segmentFileName(99),
                                 "junk bytes", nullptr));
  // And one non-segment-shaped file gc must leave alone.
  ASSERT_TRUE(writeFileReplacing(D.Dir + "/notes.txt", "keep me", nullptr));

  auto R = SegmentSet<>::open(D.Dir);
  ASSERT_TRUE(R.ok()) << R.Error; // orphans never fail the open
  ASSERT_EQ(R.Set->orphans().size(), 1u);
  EXPECT_EQ(R.Set->orphans()[0], segmentFileName(99));

  // With the default age guard the just-planted orphan is too young to
  // collect -- it could be a concurrent append's in-flight segment.
  std::string Error;
  EXPECT_TRUE(gcSegmentDir(D.Dir, &Error).empty());
  EXPECT_TRUE(Error.empty()) << Error;

  // Offline gc (no writers possible) opts out of the guard and collects.
  GcOptions Now;
  Now.MinAgeSeconds = 0;
  std::vector<std::string> Removed = gcSegmentDir(D.Dir, &Error, Now);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], segmentFileName(99));

  auto After = SegmentSet<>::open(D.Dir);
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_TRUE(After.Set->orphans().empty());
  std::string Kept;
  EXPECT_TRUE(readFileBytes(D.Dir + "/notes.txt", Kept, nullptr));
  EXPECT_EQ(Kept, "keep me");
  std::remove((D.Dir + "/notes.txt").c_str());
}

//===----------------------------------------------------------------------===//
// 3. The differential battery
//===----------------------------------------------------------------------===//

TEST(SegmentedIndex, AnswersIdenticalToSingleFileRebuildAtB128) {
  TempSegmentDir D("segment_test.diff128.tmp");
  ExprContext Ctx;
  Rng R(9001);
  std::vector<std::string> Base = corpus(Ctx, R, 60);
  std::vector<std::string> Delta1 = corpus(Ctx, R, 25);
  std::vector<std::string> Delta2 = corpus(Ctx, R, 25);
  // Cross-segment duplicates: some delta blobs repeat base classes, so
  // union counts must sum across segments.
  Delta1.push_back(Base[3]);
  Delta1.push_back(Base[10]);
  Delta2.push_back(Base[3]);
  Delta2.push_back(Delta1[0]);
  // And one undecodable blob per stream: DecodeErrors must aggregate.
  Base.push_back("not a valid blob");
  Delta2.push_back("also not a valid blob");

  auto Ref = buildBoth<Hash128>(D.Dir, Base, Delta1, Delta2, /*Shards=*/8);

  auto Seg = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Seg.ok()) << Seg.Error;
  EXPECT_STREQ(Seg.Reader->backendName(), "segmented");
  EXPECT_EQ(Seg.Reader->set().numSegments(), 3u);
  EXPECT_TRUE(Seg.Reader->verify());

  EXPECT_EQ(Seg.Reader->numClasses(), Ref->numClasses());
  expectClassSummariesEq<Hash128>(Seg.Reader->snapshot(), Ref->snapshot());
  expectIngestStatsEq(Seg.Reader->stats(), Ref->stats());
  expectClassSummariesEq<Hash128>(Seg.Reader->largestClasses(5),
                                  Ref->largestClasses(5));

  // Query everything that was ingested plus alpha-renames and misses.
  std::vector<std::string> Queries;
  for (size_t I = 0; I < Base.size(); I += 3)
    Queries.push_back(Base[I]);
  for (const std::string &B : Delta1)
    Queries.push_back(B);
  for (const std::string &B : Delta2)
    Queries.push_back(B);
  for (int I = 0; I != 10; ++I)
    Queries.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, 21))); // misses
  expectSameLookupAnswers(Seg.Reader->lookupBatch(Queries, 2),
                          Ref->lookupBatch(Queries, 2),
                          "segmented-vs-single-file");

  // Compaction must not change a single answer.
  SegmentCompactResult C = compactSegments<Hash128>(D.Dir);
  ASSERT_TRUE(C.Ok) << C.Error;
  EXPECT_EQ(C.SegmentsBefore, 3u);
  EXPECT_EQ(C.SegmentsAfter, 1u);

  auto Compacted = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Compacted.ok()) << Compacted.Error;
  EXPECT_EQ(Compacted.Reader->set().numSegments(), 1u);
  EXPECT_TRUE(Compacted.Reader->verify());
  EXPECT_EQ(Compacted.Reader->numClasses(), Ref->numClasses());
  expectClassSummariesEq<Hash128>(Compacted.Reader->snapshot(),
                                  Ref->snapshot());
  expectSameLookupAnswers(Compacted.Reader->lookupBatch(Queries, 2),
                          Ref->lookupBatch(Queries, 2),
                          "compacted-vs-single-file");
  // The compacted segment's *class table* is bit-identical to saving the
  // reference index: re-serializing its classes through the restore path
  // reproduces the table bytes exactly (the header's stats block alone
  // may differ -- FallbackChecks/VerifiedCollisions are probe-time
  // counters the reconcile probes legitimately bump).
  {
    typename AlphaHashIndex<Hash128>::Options Opts;
    Opts.Shards = 8;
    AlphaHashIndex<Hash128> Restored(Opts);
    for (ClassSummary<Hash128> &C : Compacted.Reader->snapshot())
      Restored.restoreClass(C.Hash, std::move(C.CanonicalBytes), C.Count);
    Restored.restoreStats(Ref->stats());
    EXPECT_EQ(saveIndexBytes(Restored), saveIndexBytes(*Ref));
  }

  // Compacting a single segment is a no-op success.
  SegmentCompactResult Again = compactSegments<Hash128>(D.Dir);
  EXPECT_TRUE(Again.Ok);
  EXPECT_EQ(Again.SegmentsAfter, 1u);
}

namespace {

/// Birthday-search two non-alpha-equivalent expressions whose 16-bit
/// alpha-hashes collide (as in tests/mapped_index_test.cpp).
std::pair<const Expr *, const Expr *> findColliding16(ExprContext &Ctx,
                                                      Rng &R,
                                                      AlphaHasher<Hash16> &H) {
  std::map<Hash16, const Expr *> Seen;
  for (int T = 0; T != 20000; ++T) {
    const Expr *E = genBalanced(Ctx, R, 48);
    Hash16 Code = H.hashRoot(E);
    auto [It, Fresh] = Seen.emplace(Code, E);
    if (!Fresh && !alphaEquivalent(Ctx, E, It->second))
      return {It->second, E};
  }
  return {nullptr, nullptr};
}

} // namespace

TEST(SegmentedIndex16, ForcedCollisionsResolveAcrossSegments) {
  // The hard case: colliding classes land in *different* segments, so
  // the cross-segment probe must refuse the same-hash wrong merge via
  // the exact-verify fallback against each segment's mapped bytes.
  TempSegmentDir D("segment_test.diff16.tmp");
  ExprContext Ctx;
  Rng R(4242);
  AlphaHashIndex<Hash16> Probe({/*Shards=*/4, HashSchema::DefaultSeed});
  AlphaHasher<Hash16> H(Ctx, Probe.schema());
  auto [A, B] = findColliding16(Ctx, R, H);
  ASSERT_NE(A, nullptr) << "no 16-bit collision found -- width suspect";

  std::vector<std::string> Base, Delta1, Delta2;
  Base.push_back(serializeExpr(Ctx, A));
  for (int I = 0; I != 15; ++I)
    Base.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, 24)));
  Delta1.push_back(serializeExpr(Ctx, B)); // collides with base's A
  Delta1.push_back(serializeExpr(Ctx, alphaRename(Ctx, R, A)));
  for (int I = 0; I != 6; ++I)
    Delta1.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, 24)));
  Delta2.push_back(serializeExpr(Ctx, alphaRename(Ctx, R, B)));
  Delta2.push_back(serializeExpr(Ctx, A));

  auto Ref = buildBoth<Hash16>(D.Dir, Base, Delta1, Delta2, /*Shards=*/4);

  auto Seg = SegmentedIndex<Hash16>::open(D.Dir);
  ASSERT_TRUE(Seg.ok()) << Seg.Error;
  EXPECT_TRUE(Seg.Reader->verify());
  EXPECT_EQ(Seg.Reader->numClasses(), Ref->numClasses());
  expectClassSummariesEq<Hash16>(Seg.Reader->snapshot(), Ref->snapshot());
  expectIngestStatsEq(Seg.Reader->stats(), Ref->stats());

  // The two colliding classes stay apart and carry union counts: A was
  // ingested 3x (base, delta1 rename, delta2), B 2x.
  auto HitA = Seg.Reader->lookup(Ctx, A);
  auto HitB = Seg.Reader->lookup(Ctx, B);
  ASSERT_TRUE(HitA.has_value());
  ASSERT_TRUE(HitB.has_value());
  EXPECT_EQ(HitA->Hash, HitB->Hash);
  EXPECT_EQ(HitA->Count, 3u);
  EXPECT_EQ(HitB->Count, 2u);
  EXPECT_NE(HitA->CanonicalBytes, HitB->CanonicalBytes);

  std::vector<std::string> Queries;
  Queries.push_back(serializeExpr(Ctx, A));
  Queries.push_back(serializeExpr(Ctx, B));
  Queries.push_back(serializeExpr(Ctx, alphaRename(Ctx, R, A)));
  Queries.push_back(serializeExpr(Ctx, alphaRename(Ctx, R, B)));
  Queries.push_back(serializeExpr(Ctx, genBalanced(Ctx, R, 48)));
  expectSameLookupAnswers(Seg.Reader->lookupBatch(Queries, 2),
                          Ref->lookupBatch(Queries, 2), "b16-vs-single-file");

  ASSERT_TRUE(compactSegments<Hash16>(D.Dir).Ok);
  auto Compacted = SegmentedIndex<Hash16>::open(D.Dir);
  ASSERT_TRUE(Compacted.ok()) << Compacted.Error;
  expectClassSummariesEq<Hash16>(Compacted.Reader->snapshot(),
                                 Ref->snapshot());
  expectSameLookupAnswers(Compacted.Reader->lookupBatch(Queries, 2),
                          Ref->lookupBatch(Queries, 2),
                          "b16-compacted-vs-single-file");
}

//===----------------------------------------------------------------------===//
// 4. Crash window, saturation, background compaction
//===----------------------------------------------------------------------===//

TEST(SegmentAppend, CrashWindowLeavesOldIndexServableAndIdIsReused) {
  SmallDir D("segment_test.crash.tmp");
  auto Before = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Before.ok()) << Before.Error;
  const size_t ClassesBefore = Before.Reader->numClasses();
  const uint64_t NextIdBefore = Before.Reader->set().manifest().NextId;

  ExprContext Ctx;
  Rng R(77);
  std::vector<std::string> Delta = corpus(Ctx, R, 12);
  SegmentAppendOptions Opts;
  Opts.AbortAfterSegmentWrite = true;
  SegmentAppendResult A = appendSegment<Hash128>(D.Dir, Delta, Opts);
  ASSERT_TRUE(A.Ok) << A.Error;
  EXPECT_TRUE(A.Aborted);
  EXPECT_EQ(A.ClassesAfter, ClassesBefore);

  // Reopen: the old index serves, the half-written segment is an orphan.
  auto Crashed = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Crashed.ok()) << Crashed.Error;
  EXPECT_EQ(Crashed.Reader->numClasses(), ClassesBefore);
  EXPECT_EQ(Crashed.Reader->set().manifest().NextId, NextIdBefore);
  ASSERT_EQ(Crashed.Reader->set().orphans().size(), 1u);
  EXPECT_EQ(Crashed.Reader->set().orphans()[0], A.SegmentName);
  expectClassSummariesEq<Hash128>(Crashed.Reader->snapshot(),
                                  Before.Reader->snapshot());

  // The retried append reuses the orphan's id, atomically replacing it:
  // afterwards the file is referenced and no orphan remains.
  Opts.AbortAfterSegmentWrite = false;
  SegmentAppendResult Retry = appendSegment<Hash128>(D.Dir, Delta, Opts);
  ASSERT_TRUE(Retry.Ok) << Retry.Error;
  EXPECT_FALSE(Retry.Aborted);
  EXPECT_EQ(Retry.SegmentName, A.SegmentName);

  auto After = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_TRUE(After.Reader->set().orphans().empty());
  EXPECT_EQ(After.Reader->numClasses(), ClassesBefore + Retry.Fresh);
  EXPECT_TRUE(After.Reader->verify());
}

// Regression for the gc-vs-append crash-window hazard: a gc that runs in
// the window between an append's segment write and its manifest swap
// sees the in-flight segment as "unreferenced" -- and must NOT delete
// it, or the imminent manifest commit would reference a missing file.
// The default age guard is what stands between the two.
TEST(SegmentedIndex, GcAgeGuardLeavesInFlightAppendSegmentsAlone) {
  SmallDir D("segment_test.gcguard.tmp");
  ExprContext Ctx;
  Rng R(88);
  std::vector<std::string> Delta = corpus(Ctx, R, 10);

  // Freeze an append in the crash window: segment written, manifest not
  // yet swapped. This is exactly what a concurrent gc would observe.
  SegmentAppendOptions Opts;
  Opts.Shards = 8;
  Opts.AbortAfterSegmentWrite = true;
  SegmentAppendResult A = appendSegment<Hash128>(D.Dir, Delta, Opts);
  ASSERT_TRUE(A.Ok && A.Aborted) << A.Error;

  // gc with the production default must leave the seconds-old file be.
  std::string Error;
  EXPECT_TRUE(gcSegmentDir(D.Dir, &Error).empty());
  EXPECT_TRUE(Error.empty()) << Error;

  // The append "resumes" (the retry path rewrites the same id) and
  // commits; the segment gc spared is now referenced and serving.
  Opts.AbortAfterSegmentWrite = false;
  SegmentAppendResult Retry = appendSegment<Hash128>(D.Dir, Delta, Opts);
  ASSERT_TRUE(Retry.Ok) << Retry.Error;
  EXPECT_EQ(Retry.SegmentName, A.SegmentName);
  auto After = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_TRUE(After.Reader->set().orphans().empty());
  EXPECT_TRUE(After.Reader->verify());

#if defined(__unix__) || defined(__APPLE__)
  // An *aged* orphan (a real crash leftover) is exactly what the default
  // gc exists to collect: backdate one past the guard and re-run.
  const std::string Orphan = D.Dir + "/" + segmentFileName(99);
  ASSERT_TRUE(writeFileReplacing(Orphan, "crash leftover", nullptr));
  struct timeval Old[2];
  Old[0].tv_sec = Old[1].tv_sec = ::time(nullptr) - 3600;
  Old[0].tv_usec = Old[1].tv_usec = 0;
  ASSERT_EQ(::utimes(Orphan.c_str(), Old), 0);
  std::vector<std::string> Removed = gcSegmentDir(D.Dir, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_EQ(Removed[0], segmentFileName(99));
#endif
}

TEST(SegmentedIndex, CrossSegmentCountsSaturateInsteadOfWrapping) {
  TempSegmentDir D("segment_test.saturate.tmp");
  ExprContext Ctx;
  Rng R(31);
  const Expr *Root = uniquifyBinders(Ctx, genBalanced(Ctx, R, 20));
  AlphaHasher<Hash128> H(Ctx, HashSchema(HashSchema::DefaultSeed));
  H.bindIfNeeded(Ctx);
  const Hash128 Hash = H.hashRoot(Root);
  const std::string Bytes = serializeExpr(Ctx, Root);

  // Segment 1: the class with a near-overflow count (restoreClass is the
  // no-rehash path save/load uses, so the hash is authoritative).
  AlphaHashIndex<> Old({/*Shards=*/4, HashSchema::DefaultSeed});
  Old.restoreClass(Hash, Bytes, UINT64_MAX - 5);
  ASSERT_TRUE(createSegmentDir(D.Dir, Old).Ok);

  // Segment 2: the same class again, enough to overflow. Hand-written
  // (append's blob ingest can only add one member per blob).
  AlphaHashIndex<> New({/*Shards=*/4, HashSchema::DefaultSeed});
  New.restoreClass(Hash, Bytes, 100);
  std::string Image = saveIndexBytes(New);
  ASSERT_TRUE(writeFileReplacing(D.Dir + "/" + segmentFileName(2), Image,
                                 nullptr));
  std::string MBytes;
  SegmentManifest M;
  ASSERT_TRUE(readFileBytes(manifestPathFor(D.Dir), MBytes, nullptr));
  ASSERT_TRUE(SegmentManifest::decode(MBytes, M));
  M.Segments.insert(M.Segments.begin(),
                    SegmentEntry{segmentFileName(2), Image.size(), 1, 0});
  M.NextId = 3;
  ASSERT_TRUE(writeManifestReplacing(D.Dir, M));

  auto Seg = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Seg.ok()) << Seg.Error;
  EXPECT_EQ(Seg.Reader->numClasses(), 1u);
  auto Hit = Seg.Reader->lookup(Ctx, Root);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Count, UINT64_MAX); // clamped, not wrapped
  auto Snap = Seg.Reader->snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  EXPECT_EQ(Snap[0].Count, UINT64_MAX);

  // Compaction preserves the clamp.
  ASSERT_TRUE(compactSegments<Hash128>(D.Dir).Ok);
  auto Compacted = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Compacted.ok()) << Compacted.Error;
  auto Hit2 = Compacted.Reader->lookup(Ctx, Root);
  ASSERT_TRUE(Hit2.has_value());
  EXPECT_EQ(Hit2->Count, UINT64_MAX);
}

TEST(SegmentCompactor, BackgroundMergeUnderALiveReader) {
  TempSegmentDir D("segment_test.bg.tmp");
  ExprContext Ctx;
  Rng R(88);
  std::vector<std::string> Base = corpus(Ctx, R, 40);
  AlphaHashIndex<> BaseIdx({/*Shards=*/8, HashSchema::DefaultSeed});
  BaseIdx.insertBatch(Base, 1);
  ASSERT_TRUE(createSegmentDir(D.Dir, BaseIdx).Ok);
  std::vector<std::vector<std::string>> Deltas;
  SegmentAppendOptions Opts;
  Opts.Shards = 8;
  for (int I = 0; I != 3; ++I) {
    Deltas.push_back(corpus(Ctx, R, 10));
    ASSERT_TRUE(appendSegment<Hash128>(D.Dir, Deltas.back(), Opts).Ok);
  }

  // Pin the 4-segment generation before the compactor runs: its mapped
  // segments must keep answering after compaction unlinks their files.
  auto Pinned = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(Pinned.ok()) << Pinned.Error;
  ASSERT_EQ(Pinned.Reader->set().numSegments(), 4u);
  std::vector<std::string> Queries(Base.begin(), Base.begin() + 20);
  Queries.insert(Queries.end(), Deltas[2].begin(), Deltas[2].end());
  auto AnswersBefore = Pinned.Reader->lookupBatch(Queries, 1);

  {
    SegmentCompactor<Hash128>::Options COpts;
    COpts.TriggerSegments = 2;
    COpts.PollMs = 2;
    SegmentCompactor<Hash128> Compactor(D.Dir, COpts);
    for (int Waited = 0; Compactor.compactions() == 0 && Waited < 5000;
         ++Waited)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(Compactor.compactions(), 1u) << Compactor.lastError();
  }

  // The pinned pre-compaction reader: same answers, from unlinked files.
  expectSameLookupAnswers(Pinned.Reader->lookupBatch(Queries, 1),
                          AnswersBefore, "pinned-after-unlink");

  // A fresh open sees the compacted single segment with equal answers.
  auto After = SegmentedIndex<Hash128>::open(D.Dir);
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Reader->set().numSegments(), 1u);
  EXPECT_EQ(After.Reader->numClasses(), Pinned.Reader->numClasses());
  expectSameLookupAnswers(After.Reader->lookupBatch(Queries, 1),
                          AnswersBefore, "compacted-vs-pinned");
  expectClassSummariesEq<Hash128>(After.Reader->snapshot(),
                                  Pinned.Reader->snapshot());
}
