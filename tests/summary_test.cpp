//===- tests/summary_test.cpp - Step 1 e-summary tests ----------------------===//
///
/// \file
/// The invertible e-summaries of Section 4: summarise / rebuild
/// round-trips, summary-equality vs the alpha-equivalence oracle, and
/// agreement between the naive (Section 4.6) and tagged (Section 4.8)
/// merge disciplines. These tests are the executable form of the paper's
/// correctness argument.
///
//===----------------------------------------------------------------------===//

#include "summary/ESummary.h"

#include "ast/AlphaEquivalence.h"
#include "ast/Printer.h"
#include "ast/Traversal.h"
#include "ast/Uniquify.h"
#include "gen/RandomExpr.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace hma;

namespace {

const Expr *prep(ExprContext &Ctx, const char *Src) {
  return uniquifyBinders(Ctx, parseT(Ctx, Src));
}

} // namespace

//===----------------------------------------------------------------------===//
// Structure / PosTree basics
//===----------------------------------------------------------------------===//

TEST(Summary, VarSummaryIsSingleton) {
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  ESummary S = B.summariseTagged(parseT(Ctx, "x"));
  EXPECT_EQ(S.S->K, Structure::Kind::SVar);
  ASSERT_EQ(S.VM.size(), 1u);
  EXPECT_EQ(S.VM.begin()->first, Ctx.name("x"));
  EXPECT_EQ(S.VM.begin()->second->K, PosTree::Kind::Here);
}

TEST(Summary, LambdaRemovesItsBinder) {
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  ESummary S = B.summariseTagged(parseT(Ctx, "(lam (x) (f x))"));
  ASSERT_EQ(S.S->K, Structure::Kind::SLam);
  EXPECT_NE(S.S->BinderPos, nullptr) << "x occurs in the body";
  ASSERT_EQ(S.VM.size(), 1u);
  EXPECT_EQ(S.VM.begin()->first, Ctx.name("f"));
}

TEST(Summary, UnusedBinderHasNoPosTree) {
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  ESummary S = B.summariseTagged(parseT(Ctx, "(lam (x) y)"));
  ASSERT_EQ(S.S->K, Structure::Kind::SLam);
  EXPECT_EQ(S.S->BinderPos, nullptr);
}

TEST(Summary, StructureIgnoresVariableIdentity) {
  // (add x y) and (add x x) have the same structure but different maps
  // (Section 4.2's <hole> intuition).
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  ESummary S1 = B.summariseTagged(parseT(Ctx, "(add x y)"));
  ESummary S2 = B.summariseTagged(parseT(Ctx, "(add x x)"));
  EXPECT_TRUE(structureEquals(S1.S, S2.S));
  EXPECT_FALSE(summaryEquals(S1, S2));
}

TEST(Summary, PosTreeIdentifiesOccurrences) {
  // Section 4.5's example: occurrences of "x" in App (App f x) x.
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  ESummary S = B.summariseNaive(parseT(Ctx, "((f x) x)"));
  const PosTree *P = S.VM.at(Ctx.name("x"));
  EXPECT_EQ(posTreeToString(P), "B(R(*),*)")
      << "PTBoth (PTRightOnly PTHere) PTHere";
}

TEST(Summary, StructureTagIsStrictlyGreaterThanChildren) {
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  ESummary S = B.summariseTagged(
      prep(Ctx, "((lam (x) (x (x x))) (lam (y) (y (y y))))"));
  // Walk the structure: every parent tag exceeds its children's.
  std::vector<const Structure *> Work{S.S};
  while (!Work.empty()) {
    const Structure *N = Work.back();
    Work.pop_back();
    for (const Structure *C : {N->S1, N->S2}) {
      if (!C)
        continue;
      EXPECT_GT(structureTag(N), structureTag(C));
      Work.push_back(C);
    }
  }
}

//===----------------------------------------------------------------------===//
// Summary equality == alpha-equivalence (hand-picked cases)
//===----------------------------------------------------------------------===//

namespace {

void expectSummaryEq(ExprContext &Ctx, const char *A, const char *B,
                     bool Expected) {
  SummaryBuilder Builder(Ctx);
  const Expr *EA = prep(Ctx, A);
  const Expr *EB = prep(Ctx, B);
  EXPECT_EQ(summaryEquals(Builder.summariseTagged(EA),
                          Builder.summariseTagged(EB)),
            Expected)
      << A << " vs " << B << " (tagged)";
  EXPECT_EQ(summaryEquals(Builder.summariseNaive(EA),
                          Builder.summariseNaive(EB)),
            Expected)
      << A << " vs " << B << " (naive)";
  EXPECT_EQ(alphaEquivalent(Ctx, EA, EB), Expected)
      << A << " vs " << B << " (oracle disagrees with the test case!)";
}

} // namespace

TEST(Summary, EqualityMatchesAlphaEquivalence) {
  ExprContext Ctx;
  expectSummaryEq(Ctx, "(lam (x) (add x y))", "(lam (p) (add p y))", true);
  expectSummaryEq(Ctx, "(lam (x) (add x y))", "(lam (q) (add q z))", false);
  expectSummaryEq(Ctx, "(lam (x y) (x y))", "(lam (a b) (a b))", true);
  expectSummaryEq(Ctx, "(lam (x y) (x y))", "(lam (a b) (b a))", false);
  expectSummaryEq(Ctx, "(let (x (exp z)) (add x 7))",
                  "(let (y (exp z)) (add y 7))", true);
  expectSummaryEq(Ctx, "(add x x)", "(add x y)", false);
  expectSummaryEq(Ctx, "7", "7", true);
  expectSummaryEq(Ctx, "7", "8", false);
}

//===----------------------------------------------------------------------===//
// Rebuild: the inversion property (Sections 4.2 / 4.7 / 4.8)
//===----------------------------------------------------------------------===//

namespace {

void expectRoundTrip(ExprContext &Ctx, const Expr *E) {
  SummaryBuilder B(Ctx);
  const Expr *RNaive = rebuildNaive(Ctx, B.summariseNaive(E));
  EXPECT_TRUE(alphaEquivalent(Ctx, E, RNaive))
      << "naive rebuild not alpha-equivalent for "
      << printExpr(Ctx, E).substr(0, 200);
  const Expr *RTagged = rebuildTagged(Ctx, B.summariseTagged(E));
  EXPECT_TRUE(alphaEquivalent(Ctx, E, RTagged))
      << "tagged rebuild not alpha-equivalent for "
      << printExpr(Ctx, E).substr(0, 200);
}

} // namespace

TEST(SummaryRebuild, HandPickedRoundTrips) {
  ExprContext Ctx;
  const char *Sources[] = {
      "x",
      "42",
      "(lam (x) x)",
      "(lam (x) y)",
      "(lam (x) (x x))",
      "(f x y)",
      "(lam (x) ((lam (b) ((x b) x)) x))", // Figure 1's example shape
      "(let (w (add v 7)) (mul (add a w) w))",
      "(let (x (f x)) x)",
      "(lam (t) (foo (lam (x) (x t)) (lam (y) (lam (x2) (x2 t)))))",
      "(foo (lam (x) (add x 7)) (lam (y) (add y 7)))",
  };
  for (const char *Src : Sources)
    expectRoundTrip(Ctx, prep(Ctx, Src));
}

TEST(SummaryRebuild, RandomBalancedRoundTrips) {
  ExprContext Ctx;
  Rng R(42);
  for (uint32_t Size : {1u, 2u, 3u, 5u, 17u, 64u, 200u})
    for (int Rep = 0; Rep != 10; ++Rep)
      expectRoundTrip(Ctx, genBalanced(Ctx, R, Size));
}

TEST(SummaryRebuild, RandomUnbalancedRoundTrips) {
  ExprContext Ctx;
  Rng R(43);
  for (uint32_t Size : {2u, 9u, 33u, 150u})
    for (int Rep = 0; Rep != 10; ++Rep)
      expectRoundTrip(Ctx, genUnbalanced(Ctx, R, Size));
}

TEST(SummaryRebuild, RebuiltHasDistinctBinders) {
  ExprContext Ctx;
  SummaryBuilder B(Ctx);
  const Expr *E = prep(Ctx, "(lam (x) (lam (y) (f (x y) (lam (z) (z x)))))");
  const Expr *R = rebuildTagged(Ctx, B.summariseTagged(E));
  EXPECT_TRUE(hasDistinctBinders(Ctx, R));
}

//===----------------------------------------------------------------------===//
// Property: summary equality <=> alpha-equivalence on random pairs
//===----------------------------------------------------------------------===//

class SummaryPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SummaryPropertyTest, EqualityCoincidesWithOracle) {
  uint32_t Size = GetParam();
  ExprContext Ctx;
  Rng R(1000 + Size);
  SummaryBuilder B(Ctx);
  for (int Rep = 0; Rep != 20; ++Rep) {
    const Expr *E1 = genBalanced(Ctx, R, Size);
    // Mix of: alpha-renamed copy (must equate), and independent draw
    // (almost surely must not).
    const Expr *E2 = (Rep % 2 == 0) ? alphaRename(Ctx, R, E1)
                                    : genBalanced(Ctx, R, Size);
    bool Oracle = alphaEquivalent(Ctx, E1, E2);
    bool Tagged = summaryEquals(B.summariseTagged(E1), B.summariseTagged(E2));
    bool Naive = summaryEquals(B.summariseNaive(E1), B.summariseNaive(E2));
    EXPECT_EQ(Tagged, Oracle) << "tagged summary disagrees at size " << Size;
    EXPECT_EQ(Naive, Oracle) << "naive summary disagrees at size " << Size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SummaryPropertyTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

//===----------------------------------------------------------------------===//
// Per-subexpression summaries
//===----------------------------------------------------------------------===//

TEST(Summary, SummariseAllMatchesPerNodeSummarise) {
  ExprContext Ctx;
  Rng R(7);
  const Expr *Root = genBalanced(Ctx, R, 60);
  SummaryBuilder B(Ctx);
  std::vector<ESummary> All = B.summariseAllTagged(Root);
  // Every node's stored summary equals a fresh summarisation of it.
  postorder(Root, [&](const Expr *E) {
    SummaryBuilder Fresh(Ctx);
    EXPECT_TRUE(summaryEquals(All[E->id()], Fresh.summariseTagged(E)))
        << "node id " << E->id();
  });
}
