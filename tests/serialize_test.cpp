//===- tests/serialize_test.cpp - Serialization tests ------------------------===//
///
/// \file
/// Round-trips, cross-context hash stability, and defensive decoding of
/// corrupt input.
///
//===----------------------------------------------------------------------===//

#include "ast/Serialize.h"

#include "ast/AlphaEquivalence.h"
#include "ast/Printer.h"
#include "core/AlphaHasher.h"
#include "gen/MLModels.h"
#include "gen/RandomExpr.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace hma;

namespace {

void expectRoundTrip(ExprContext &Ctx, const Expr *E) {
  std::string Bytes = serializeExpr(Ctx, E);
  ExprContext Fresh;
  Fresh.name("skew_the_intern_order");
  DeserializeResult R = deserializeExpr(Fresh, Bytes);
  ASSERT_TRUE(R.ok()) << R.Error;
  // Spelling-exact round trip: identical rendering, identical hash.
  EXPECT_EQ(printExpr(Ctx, E), printExpr(Fresh, R.E));
  EXPECT_EQ(E->treeSize(), R.E->treeSize());
  EXPECT_TRUE(alphaEquivalent(Ctx, E, Fresh, R.E));
}

} // namespace

TEST(Serialize, HandPickedRoundTrips) {
  ExprContext Ctx;
  const char *Sources[] = {
      "x",
      "0",
      "-9223372036854775808", // INT64_MIN survives zigzag
      "9223372036854775807",
      "(lam (x) (add x 7))",
      "(let (w (add v 7)) (mul (add a w) w))",
      "(f (lam (p q) (p (q zebra))) -42)",
  };
  for (const char *Src : Sources)
    expectRoundTrip(Ctx, parseT(Ctx, Src));
}

TEST(Serialize, RandomRoundTrips) {
  ExprContext Ctx;
  Rng R(64128);
  for (uint32_t Size : {1u, 2u, 17u, 100u, 1000u}) {
    expectRoundTrip(Ctx, genBalanced(Ctx, R, Size));
    expectRoundTrip(Ctx, genUnbalanced(Ctx, R, Size));
    expectRoundTrip(Ctx, genArithmetic(Ctx, R, Size));
  }
}

TEST(Serialize, DeepSpineIterative) {
  ExprContext Ctx;
  Rng R(3);
  expectRoundTrip(Ctx, genUnbalanced(Ctx, R, 200001));
}

TEST(Serialize, HashStableAcrossSerialization) {
  // The whole point: persist, reload elsewhere, same fingerprint.
  ExprContext A;
  const Expr *E = buildGmm(A);
  std::string Bytes = serializeExpr(A, E);
  ExprContext B;
  DeserializeResult R = deserializeExpr(B, Bytes);
  ASSERT_TRUE(R.ok()) << R.Error;
  Hash128 HA = AlphaHasher<Hash128>(A).hashRoot(E);
  Hash128 HB = AlphaHasher<Hash128>(B).hashRoot(R.E);
  EXPECT_EQ(HA, HB);
}

TEST(Serialize, FormatIsCompact) {
  ExprContext Ctx;
  const Expr *E = buildBert(Ctx, 2);
  std::string Bytes = serializeExpr(Ctx, E);
  // Sanity envelope: a handful of bytes per node (tag + small varints),
  // plus the name table.
  EXPECT_LT(Bytes.size(), size_t(E->treeSize()) * 8);
  EXPECT_GT(Bytes.size(), size_t(E->treeSize()));
}

TEST(Serialize, RejectsCorruptInput) {
  ExprContext Ctx;
  const Expr *E = parseT(Ctx, "(lam (x) (add x 7))");
  std::string Good = serializeExpr(Ctx, E);

  struct Case {
    const char *What;
    std::string Bytes;
  };
  std::vector<Case> Cases;
  Cases.push_back({"empty", ""});
  Cases.push_back({"bad magic", "XXXX"});
  Cases.push_back({"truncated header", Good.substr(0, 3)});
  Cases.push_back({"truncated name table", Good.substr(0, 6)});
  Cases.push_back({"truncated body", Good.substr(0, Good.size() - 1)});
  Cases.push_back({"trailing bytes", Good + "!"});
  std::string BadTag = Good;
  BadTag[BadTag.size() - 4] = 0x7F; // clobber a node tag
  Cases.push_back({"invalid tag", BadTag});

  for (const Case &C : Cases) {
    ExprContext Fresh;
    DeserializeResult R = deserializeExpr(Fresh, C.Bytes);
    EXPECT_FALSE(R.ok()) << C.What << " should be rejected";
    EXPECT_FALSE(R.Error.empty()) << C.What;
  }
}

TEST(Serialize, BadNameReferenceRejected) {
  // Hand-build: magic, 0 names, then a Var referencing name 5.
  std::string Bytes = "HMA1";
  Bytes.push_back(0); // zero names
  Bytes.push_back(0); // tag Var
  Bytes.push_back(5); // name id 5 (out of range)
  ExprContext Ctx;
  DeserializeResult R = deserializeExpr(Ctx, Bytes);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("name"), std::string::npos);
}
