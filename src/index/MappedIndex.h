//===- index/MappedIndex.h - Zero-copy mmap'd HMAI reader -------------------===//
///
/// \file
/// A read-only \ref IndexReader over an mmap'd `HMAI` file: the
/// zero-copy serving path the on-disk format was laid out for.
///
/// `HMAI` (index/IndexIO.h) stores each shard's classes as a *sorted*
/// fixed-width (hash, blob offset, blob length, count) table with
/// absolute offsets into a trailing bytes region. \ref MappedIndex
/// therefore never materializes anything:
///
///  - **open is O(shards), not O(classes)**: decode the 80-byte header,
///    walk the directory, done -- open time is independent of index
///    size. Contrast `loadIndexBytes`, which copies every class into a
///    live \ref AlphaHashIndex.
///  - **find is a binary search on the file**: hash the query, pick the
///    shard (\ref detail::shardIndexForHash -- the same pure function of
///    the hash the writer grouped by), lower-bound its table, and for
///    each record under the hash decode the candidate blob *on demand*
///    into a caller-owned bounded \ref DecodeScratch for the exact
///    \ref alphaEquivalent fallback. No class vectors, no byte copies:
///    the returned \ref LookupResult views the mapping itself.
///  - **reads are defensively bounds-checked**: every record-designated
///    blob range is validated against the mapping before any byte is
///    touched, so a corrupt (unverified) file can mis-answer but never
///    read out of bounds. \ref verify runs the loader's full O(classes)
///    integrity check (sort order, blob ranges) on demand for untrusted
///    files; `loadIndexBytes(image).ok()` iff `open` + `verify` succeed
///    (asserted by the adversarial sweep in tests/index_io_test.cpp).
///
/// Concurrency: the mapping is immutable, so any number of threads may
/// query one MappedIndex concurrently -- no locks anywhere on the read
/// path. Each thread supplies (or a batch worker owns) its own
/// \ref DecodeScratch; the only shared mutable state is the pair of
/// relaxed atomic fallback counters folded into \ref stats.
///
/// Lifetime: lookup results view the mapping. The MappedIndex (and, for
/// \ref openBytes, the caller's buffer) must outlive every outstanding
/// \ref LookupResult, including whole `lookupBatch` result vectors.
///
//===----------------------------------------------------------------------===//

#ifndef HMA_INDEX_MAPPEDINDEX_H
#define HMA_INDEX_MAPPEDINDEX_H

#include "ast/AlphaEquivalence.h"
#include "ast/Serialize.h"
#include "ast/Uniquify.h"
#include "core/AlphaHasher.h"
#include "index/BatchDriver.h"
#include "index/IndexIO.h"
#include "index/IndexReader.h"
#include "index/ShardStore.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/HashCode.h"
#include "support/HashSchema.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hma {

/// RAII owner of an `HMAI` image's backing bytes: an mmap'd file where
/// the platform provides one, else a buffered read of the whole file
/// (the graceful-fallback path; same bytes, no page-cache sharing).
class MappedBytes {
public:
  /// Map (or, with \p ForceBuffered or where mmap is unavailable, read)
  /// \p Path. Returns nullptr with \p Error set on I/O failure.
  static std::unique_ptr<MappedBytes> openFile(const std::string &Path,
                                               bool ForceBuffered,
                                               std::string *Error);

  /// Wrap an in-memory image (ownership taken). Lets tests and benches
  /// run the mapped read path without touching the filesystem.
  static std::unique_ptr<MappedBytes> fromBuffer(std::string Buffer);

  MappedBytes(const MappedBytes &) = delete;
  MappedBytes &operator=(const MappedBytes &) = delete;
  ~MappedBytes();

  std::string_view bytes() const { return View; }
  /// True when the bytes come from an actual mmap (false: buffered).
  bool isMapped() const { return Map != nullptr; }

private:
  MappedBytes() = default;

  void *Map = nullptr; ///< mmap base, or nullptr in buffered mode.
  size_t MapLen = 0;
  std::string Buffer; ///< Buffered-mode storage.
  std::string_view View;
};

/// Read-only, zero-copy index reader over an `HMAI` image.
template <typename H = Hash128> class MappedIndex : public IndexReader<H> {
public:
  using LookupResult = hma::LookupResult<H>;
  using ClassSummary = hma::ClassSummary<H>;

  /// Outcome of opening an image: the reader or a diagnostic (same shape
  /// as \ref IndexLoadResult).
  struct OpenResult {
    std::unique_ptr<MappedIndex> Reader;
    std::string Error;   ///< Empty on success.
    size_t ErrorPos = 0; ///< Byte offset of the failure.

    bool ok() const { return Reader != nullptr; }
  };

  /// Aggregate read-side counters of one \ref lookupBatch call: scratch
  /// reuse (Decodes vs Recycles) and worker-hasher pool allocations
  /// (steady-state must be 0 -- the zero-allocation read pipeline).
  struct ReadBatchStats {
    uint64_t Hits = 0;
    uint64_t Decodes = 0;  ///< Fallback blob decodes across all workers.
    uint64_t Recycles = 0; ///< Scratch context (re-)creations.
    uint64_t PoolNodesAllocated = 0;
    uint64_t SteadyPoolNodesAllocated = 0;
  };

  /// Open \p Path: mmap where available, buffered read otherwise (or
  /// when \p ForceBuffered). O(shards): no per-class work, no blob
  /// reads.
  static OpenResult open(const std::string &Path, bool ForceBuffered = false) {
    static const obs::Histogram OpenNs = obs::Histogram::get(
        "hma_mapped_open_ns",
        "Latency of opening an HMAI file for mapped reads (O(shards)), ns");
    obs::ScopedTrace Span("mapped_open", "io");
    obs::ScopedTimer Timer(OpenNs);
    std::string Error;
    std::unique_ptr<MappedBytes> Storage =
        MappedBytes::openFile(Path, ForceBuffered, &Error);
    if (!Storage) {
      OpenResult R;
      R.Error = std::move(Error);
      return R;
    }
    std::string_view Bytes = Storage->bytes();
    return fromView(Bytes, std::move(Storage));
  }

  /// Open over caller-owned bytes (which must outlive the reader).
  static OpenResult openBytes(std::string_view Bytes) {
    return fromView(Bytes, nullptr);
  }

  /// Open over an owned in-memory image.
  static OpenResult openBuffer(std::string Bytes) {
    std::unique_ptr<MappedBytes> Storage =
        MappedBytes::fromBuffer(std::move(Bytes));
    std::string_view View = Storage->bytes();
    return fromView(View, std::move(Storage));
  }

  /// True when the image is served from an actual mmap (false for the
  /// buffered fallback and the in-memory open variants).
  bool isFileMapped() const { return Storage && Storage->isMapped(); }

  /// The raw image this reader serves from (tests assert lookup results
  /// view into it).
  std::string_view imageBytes() const { return Bytes; }

  /// Deep integrity check, O(classes): per-shard sort order and every
  /// blob range. \ref open is O(shards) by design, so table-level
  /// corruption in an untrusted file is caught either here or --
  /// harmlessly, as a miss/refutation -- by the bounds-checked read
  /// path. Mirrors `loadIndexBytes`' record validation exactly.
  bool verify(std::string *Error = nullptr, size_t *ErrorPos = nullptr) const {
    static const obs::Histogram VerifyNs = obs::Histogram::get(
        "hma_mapped_verify_ns",
        "Latency of the deep O(classes) integrity check on a mapped "
        "image, ns");
    obs::ScopedTrace Span("mapped_verify", "io",
                          static_cast<int64_t>(Info.NumClasses));
    obs::ScopedTimer Timer(VerifyNs);
    const size_t RecSize = iio::recordSize<H>();
    for (size_t S = 0; S != Tables.size(); ++S) {
      const ShardTable &T = Tables[S];
      H Prev{};
      for (uint64_t I = 0; I != T.Count; ++I) {
        const size_t RecPos = static_cast<size_t>(T.Offset) + I * RecSize;
        iio::Record<H> Rec = iio::readRecord<H>(Bytes.data() + RecPos);
        std::string RecError =
            iio::checkRecord(Rec, Prev, I == 0, Bytes.size(), BytesStart,
                             static_cast<unsigned>(S), I);
        if (!RecError.empty()) {
          if (Error)
            *Error = std::move(RecError);
          if (ErrorPos)
            *ErrorPos = RecPos;
          return false;
        }
        Prev = Rec.Hash;
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // IndexReader surface
  //===--------------------------------------------------------------------===//

  const char *backendName() const override {
    return isFileMapped() ? "mapped" : "mapped (buffered)";
  }
  const HashSchema &schema() const override { return Schema; }
  unsigned numShards() const override { return Info.Shards; }
  size_t numClasses() const override {
    return static_cast<size_t>(Info.NumClasses);
  }

  /// Header stats plus the fallback checks this reader has run -- the
  /// same aggregation a live index reports, so differential tests can
  /// compare stats across backends after identical query streams.
  IndexStats stats() const override {
    IndexStats S = Info.Stats;
    S.FallbackChecks += ReadFallbackChecks.load(std::memory_order_relaxed);
    S.VerifiedCollisions +=
        ReadVerifiedCollisions.load(std::memory_order_relaxed);
    return S;
  }

  std::vector<size_t> shardLoads() const override {
    std::vector<size_t> Loads;
    Loads.reserve(Tables.size());
    for (const ShardTable &T : Tables)
      Loads.push_back(static_cast<size_t>(T.Count));
    return Loads;
  }

  /// Canonical-blob bytes per shard, summed from each shard's record
  /// lengths (for a well-formed image, sums to \ref retainedBytes).
  std::vector<size_t> shardBytes() const override {
    std::vector<size_t> Out;
    Out.reserve(Tables.size());
    for (const ShardTable &T : Tables) {
      size_t N = 0;
      for (uint64_t I = 0; I != T.Count; ++I)
        N += static_cast<size_t>(record(T, I).Length);
      Out.push_back(N);
    }
    return Out;
  }

  /// Size of the mapped bytes region: for a well-formed image, exactly
  /// the canonical-blob bytes a live index would retain on heap.
  size_t retainedBytes() const override {
    return Bytes.size() > BytesStart ? Bytes.size() - BytesStart : 0;
  }

  /// Owning export of every class, sorted by (hash, bytes) -- the one
  /// deliberately materializing operation (snapshots outlive backends).
  std::vector<ClassSummary> snapshot() const override {
    std::vector<ClassSummary> Out;
    Out.reserve(numClasses());
    for (const ShardTable &T : Tables) {
      for (uint64_t I = 0; I != T.Count; ++I) {
        iio::Record<H> R = record(T, I);
        std::string_view Blob = blobRange(R.Offset, R.Length);
        Out.push_back(ClassSummary{
            R.Hash, R.Count,
            std::string(Blob.data() ? Blob : std::string_view())});
      }
    }
    std::sort(Out.begin(), Out.end(), detail::lessByHashThenBytes<H>);
    return Out;
  }

  std::vector<ClassSummary> largestClasses(size_t N) const override {
    std::vector<ClassSummary> Top;
    if (N == 0)
      return Top;
    for (const ShardTable &T : Tables) {
      for (uint64_t I = 0; I != T.Count; ++I) {
        iio::Record<H> R = record(T, I);
        std::string_view Blob = blobRange(R.Offset, R.Length);
        detail::considerLargest<H>(Top, N, R.Hash, R.Count,
                                   Blob.data() ? Blob : std::string_view());
      }
    }
    return Top;
  }

  std::optional<LookupResult> lookup(ExprContext &Ctx,
                                     const Expr *Root) override {
    AlphaHasher<H> Hasher(Ctx, Schema);
    DecodeScratch Scratch;
    return lookup(Ctx, Root, Hasher, Scratch);
  }

  /// Fully scratch-reusing lookup: caller owns both the hasher and the
  /// fallback decode scratch (what \ref lookupBatch gives each worker).
  std::optional<LookupResult> lookup(ExprContext &Ctx, const Expr *Root,
                                     AlphaHasher<H> &Hasher,
                                     DecodeScratch &Scratch) const {
    assert(Hasher.schema().seed() == Schema.seed() &&
           "hasher seed does not match the index file");
    Hasher.bindIfNeeded(Ctx);
    Root = uniquifyBinders(Ctx, Root);
    return findHashed(Ctx, Root, Hasher.hashRoot(Root), Scratch);
  }

  std::vector<std::optional<LookupResult>>
  lookupBatch(const std::vector<std::string> &Blobs,
              unsigned Threads) override {
    return lookupBatch(Blobs, Threads, nullptr);
  }

  /// \ref lookupBatch with read-side counters reported (scratch reuse
  /// and steady-state allocation; see \ref ReadBatchStats).
  std::vector<std::optional<LookupResult>>
  lookupBatch(const std::vector<std::string> &Blobs, unsigned Threads,
              ReadBatchStats *StatsOut) const {
    std::vector<std::optional<LookupResult>> Results(Blobs.size());
    ReadBatchStats Total;
    std::mutex TotalMu;
    struct WorkerState {
      DecodeScratch Scratch;
    };
    detail::forEachHashedChunk<H, WorkerState>(
        Schema, Blobs.size(), Threads, "query_mapped",
        [&](AlphaHasher<H> &Hasher, ExprContext &Ctx, size_t Begin,
            size_t End, WorkerState &W) {
          for (size_t I = Begin; I != End; ++I) {
            DeserializeResult R = deserializeExpr(Ctx, Blobs[I]);
            if (!R.ok())
              continue; // leave Results[I] empty, same as a miss
            const Expr *Root = uniquifyBinders(Ctx, R.E);
            Results[I] =
                findHashed(Ctx, Root, Hasher.hashRoot(Root), W.Scratch);
          }
        },
        [&](WorkerState &W, uint64_t PoolNodes, uint64_t SteadyNodes) {
          std::lock_guard<std::mutex> Lock(TotalMu);
          Total.Decodes += W.Scratch.decodes();
          Total.Recycles += W.Scratch.recycles();
          Total.PoolNodesAllocated += PoolNodes;
          Total.SteadyPoolNodesAllocated += SteadyNodes;
        });
    if (StatsOut) {
      for (const std::optional<LookupResult> &R : Results)
        Total.Hits += R.has_value();
      *StatsOut = Total;
    }
    return Results;
  }

private:
  struct ShardTable {
    uint64_t Offset = 0; ///< Absolute file offset of the shard's table.
    uint64_t Count = 0;  ///< Records in the table.
  };

  MappedIndex(std::string_view Bytes, const IndexFileInfo &Info,
              std::unique_ptr<MappedBytes> Storage)
      : Storage(std::move(Storage)), Bytes(Bytes), Info(Info),
        Schema(Info.Seed), ShardMask(Info.Shards - 1) {
    const size_t RecSize = iio::recordSize<H>();
    // Canonical start of the bytes region; every blob range is checked
    // against it (an offset below aliases the header/directory/tables).
    BytesStart = iio::HeaderSize +
                 size_t(Info.Shards) * iio::DirEntrySize +
                 static_cast<size_t>(Info.NumClasses) * RecSize;
    Tables.reserve(Info.Shards);
    for (unsigned S = 0; S != Info.Shards; ++S) {
      const char *Dir = Bytes.data() + iio::HeaderSize + S * iio::DirEntrySize;
      Tables.push_back(
          ShardTable{iio::getWordLE(Dir, 8), iio::getWordLE(Dir + 8, 8)});
    }
  }

  static OpenResult fromView(std::string_view Bytes,
                             std::unique_ptr<MappedBytes> Storage) {
    OpenResult R;
    IndexFileInfo Info;
    if (!probeIndexBytes(Bytes, Info, &R.Error, &R.ErrorPos))
      return R;
    if (std::string WidthError = iio::checkWidth<H>(Info);
        !WidthError.empty()) {
      R.Error = std::move(WidthError);
      R.ErrorPos = iio::WidthErrorPos;
      return R;
    }
    R.Reader.reset(new MappedIndex(Bytes, Info, std::move(Storage)));
    return R;
  }

  iio::Record<H> record(const ShardTable &T, uint64_t I) const {
    return iio::readRecord<H>(Bytes.data() + T.Offset +
                              I * iio::recordSize<H>());
  }

  /// Just the hash field of record \p I -- what the binary search
  /// compares; decoding the other 24 bytes per probe step would be
  /// wasted work on the hot path.
  H hashAt(const ShardTable &T, uint64_t I) const {
    H V;
    iio::getHashLE(Bytes.data() + T.Offset + I * iio::recordSize<H>(), V);
    return V;
  }

  /// The record's blob as a view into the image, or a null view when the
  /// designated range is out of bounds (corrupt unverified file) -- the
  /// caller treats that as an undecodable candidate, never as bytes.
  std::string_view blobRange(uint64_t Offset, uint64_t Length) const {
    if (Offset < BytesStart || Offset > Bytes.size() ||
        Length > Bytes.size() - Offset)
      return std::string_view();
    return Bytes.substr(static_cast<size_t>(Offset),
                        static_cast<size_t>(Length));
  }

  /// Read-path probe: binary-search the shard's sorted table for \p
  /// Hash, then decode-and-verify each candidate under it. Lock-free;
  /// \p Scratch must be private to the calling thread.
  std::optional<LookupResult> findHashed(const ExprContext &SrcCtx,
                                         const Expr *Root, H Hash,
                                         DecodeScratch &Scratch) const {
    static const obs::Histogram FindNs = obs::Histogram::get(
        "hma_mapped_find_ns",
        "Latency of one mapped-table probe (binary search + on-demand "
        "decode-verify), ns");
    static const obs::Counter Verifies = obs::Counter::get(
        "hma_mapped_fallback_checks_total",
        "Exact-verify fallback runs against mapped candidates");
    static const obs::Counter Collisions = obs::Counter::get(
        "hma_mapped_verified_collisions_total",
        "Mapped hash matches refuted by the exact oracle");
    const uint64_t T0 = obs::Enabled ? obs::nowNanos() : 0;
    const ShardTable &T =
        Tables[detail::shardIndexForHash(Hash, ShardMask)];
    // Lower bound by hash over the fixed-width records.
    uint64_t Lo = 0, Hi = T.Count;
    while (Lo != Hi) {
      uint64_t Mid = Lo + (Hi - Lo) / 2;
      if (hashAt(T, Mid) < Hash)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    uint64_t Checks = 0, Refuted = 0;
    std::optional<LookupResult> Result;
    for (uint64_t I = Lo; I != T.Count; ++I) {
      iio::Record<H> R = record(T, I);
      if (R.Hash != Hash)
        break;
      ++Checks;
      std::string_view Blob = blobRange(R.Offset, R.Length);
      const Expr *Canon = Blob.data() ? Scratch.decode(Blob) : nullptr;
      if (Canon && alphaEquivalent(SrcCtx, Root, Scratch.context(), Canon)) {
        Result = LookupResult{Hash, R.Count, Blob};
        break;
      }
      ++Refuted;
    }
    if (Checks) {
      ReadFallbackChecks.fetch_add(Checks, std::memory_order_relaxed);
      ReadVerifiedCollisions.fetch_add(Refuted, std::memory_order_relaxed);
      Verifies.add(Checks);
      Collisions.add(Refuted);
    }
    if (obs::Enabled)
      FindNs.record(obs::nowNanos() - T0);
    return Result;
  }

  std::unique_ptr<MappedBytes> Storage; ///< Null for \ref openBytes.
  std::string_view Bytes;
  IndexFileInfo Info;
  HashSchema Schema;
  unsigned ShardMask = 0;
  size_t BytesStart = 0;
  std::vector<ShardTable> Tables;
  mutable std::atomic<uint64_t> ReadFallbackChecks{0};
  mutable std::atomic<uint64_t> ReadVerifiedCollisions{0};
};

} // namespace hma

#endif // HMA_INDEX_MAPPEDINDEX_H
