//===- serve/Protocol.h - hma indexd wire protocol --------------------------===//
///
/// \file
/// The length-prefixed binary protocol `hma indexd` speaks over its
/// Unix-domain (and optional TCP) socket. Both endpoints of the
/// connection -- the serving daemon (serve/Server.h) and the client
/// (serve/Client.h) -- encode and decode through this header only, so
/// the wire format cannot drift between them.
///
/// Frame layout (all integers little-endian):
///
///   length    u32   payload bytes that follow (not counting itself)
///   version   u8    protocol schema version (currently 1); a responder
///                   rejects versions it does not speak, so the byte is
///                   the evolution point for future schema changes
///   kind      u8    request: an \ref Op; response: a \ref Status
///   body      ...   op/status-specific, possibly empty
///
/// Request bodies:
///
///   Ping         (empty)
///   Lookup       the query expression, `ast/Serialize` bytes
///   LookupBatch  u32 count, then count x { u32 len, blob }
///   Stats        u8 format (0 text, 1 json, 2 prom)
///   Reload       u32 len, path bytes (len 0: reload the current file)
///   Shutdown     (empty)
///
/// Response bodies (status == Ok):
///
///   Ping         (empty)
///   Lookup       one encoded \ref WireLookup
///   LookupBatch  u32 count, then count x WireLookup
///   Stats        the report text
///   Reload       a one-line human confirmation
///   Shutdown     (empty)
///
/// Any other status carries a human-readable diagnostic as its body and
/// -- for frame-level offences (malformed, oversized, bad version) -- is
/// followed by the server closing the connection. Hostile inputs are the
/// expected case, not the exception: every decoder here is bounds-checked
/// against the declared frame length, a declared length above the
/// configured cap is rejected from the 4 header bytes alone, and a frame
/// that never completes is the *transport's* problem (the server kills it
/// on a deadline; see serve/Server.h).
///
//===----------------------------------------------------------------------===//

#ifndef HMA_SERVE_PROTOCOL_H
#define HMA_SERVE_PROTOCOL_H

#include "index/IndexIO.h"
#include "support/HashCode.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hma::serve {

/// Protocol schema version spoken by this build (frame `version` byte).
constexpr uint8_t ProtocolVersion = 1;

/// Bytes of the frame length prefix.
constexpr size_t FrameHeaderBytes = 4;

/// Default cap on one frame's payload. Generous for batches, small
/// enough that a hostile "length = 4 GiB" header never turns into an
/// allocation.
constexpr size_t DefaultMaxFrameBytes = size_t(16) << 20;

/// Absolute ceiling no endpoint accepts past, regardless of options.
constexpr size_t FrameBytesCeiling = size_t(1) << 30;

/// Request opcodes.
enum class Op : uint8_t {
  Ping = 0,
  Lookup = 1,
  LookupBatch = 2,
  Stats = 3,
  Reload = 4,
  Shutdown = 5,
};

/// Response status codes. Stable wire values: append, never renumber.
enum class Status : uint8_t {
  Ok = 0,
  Malformed = 1,      ///< Body does not decode under the declared op.
  TooLarge = 2,       ///< Declared frame length exceeds the cap.
  BadVersion = 3,     ///< Version byte this endpoint does not speak.
  BadOp = 4,          ///< Unknown opcode.
  Timeout = 5,        ///< Request deadline exceeded (slow or stuck peer).
  ShuttingDown = 6,   ///< Server is draining; no new work accepted.
  ReloadRejected = 7, ///< Candidate index failed the admission gate.
  Internal = 8,       ///< Anything else; body has the diagnostic.
};

inline const char *statusName(Status S) {
  switch (S) {
  case Status::Ok: return "ok";
  case Status::Malformed: return "malformed";
  case Status::TooLarge: return "too-large";
  case Status::BadVersion: return "bad-version";
  case Status::BadOp: return "bad-op";
  case Status::Timeout: return "timeout";
  case Status::ShuttingDown: return "shutting-down";
  case Status::ReloadRejected: return "reload-rejected";
  case Status::Internal: return "internal";
  }
  return "unknown";
}

/// `Stats` request format byte values.
enum class StatsFormat : uint8_t { Text = 0, Json = 1, Prom = 2 };

/// One lookup answer on the wire. Unlike the in-process
/// \ref LookupResult this *owns* its canonical bytes: the reply is
/// serialised while the serving generation is pinned, and nothing on the
/// wire may view a mapping whose generation can be swapped out.
struct WireLookup {
  bool Present = false;
  Hash128 Hash{};
  uint64_t Count = 0;
  std::string CanonicalBytes;
};

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

/// Frame up \p Body under \p Kind (an Op for requests, a Status for
/// responses): length prefix, version byte, kind byte, body.
inline std::string encodeFrame(uint8_t Kind, std::string_view Body) {
  std::string Out;
  Out.reserve(FrameHeaderBytes + 2 + Body.size());
  iio::putWordLE(Out, 2 + Body.size(), 4);
  Out.push_back(static_cast<char>(ProtocolVersion));
  Out.push_back(static_cast<char>(Kind));
  Out.append(Body);
  return Out;
}

inline std::string encodeRequest(Op O, std::string_view Body = {}) {
  return encodeFrame(static_cast<uint8_t>(O), Body);
}

inline std::string encodeResponse(Status S, std::string_view Body = {}) {
  return encodeFrame(static_cast<uint8_t>(S), Body);
}

inline void appendBlob(std::string &Out, std::string_view Blob) {
  iio::putWordLE(Out, Blob.size(), 4);
  Out.append(Blob);
}

/// Body of a LookupBatch request.
inline std::string encodeBatchRequest(const std::vector<std::string> &Blobs) {
  std::string Body;
  size_t Total = 4;
  for (const std::string &B : Blobs)
    Total += 4 + B.size();
  Body.reserve(Total);
  iio::putWordLE(Body, Blobs.size(), 4);
  for (const std::string &B : Blobs)
    appendBlob(Body, B);
  return Body;
}

/// Body of a Reload request (empty path: reload the current file).
inline std::string encodeReloadRequest(std::string_view Path) {
  std::string Body;
  appendBlob(Body, Path);
  return Body;
}

inline void appendWireLookup(std::string &Out, const WireLookup &R) {
  Out.push_back(R.Present ? 1 : 0);
  if (!R.Present)
    return;
  iio::putHashLE(Out, R.Hash);
  iio::putWordLE(Out, R.Count, 8);
  appendBlob(Out, R.CanonicalBytes);
}

//===----------------------------------------------------------------------===//
// Decoding (every reader is bounds-checked; false means malformed)
//===----------------------------------------------------------------------===//

/// Consume a u32 length-prefixed blob from the front of \p In.
inline bool takeBlob(std::string_view &In, std::string_view &Blob) {
  if (In.size() < 4)
    return false;
  uint64_t Len = iio::getWordLE(In.data(), 4);
  if (Len > In.size() - 4)
    return false;
  Blob = In.substr(4, static_cast<size_t>(Len));
  In.remove_prefix(4 + static_cast<size_t>(Len));
  return true;
}

/// Decode a LookupBatch request body into blob views (into \p Body).
/// Rejects trailing bytes: a frame is exactly its declared content.
inline bool parseBatchRequest(std::string_view Body,
                              std::vector<std::string_view> &Blobs) {
  if (Body.size() < 4)
    return false;
  uint64_t Count = iio::getWordLE(Body.data(), 4);
  Body.remove_prefix(4);
  // Each entry costs >= 4 bytes, so an absurd declared count fails fast
  // instead of sizing a vector from hostile input.
  if (Count > Body.size() / 4 + 1)
    return false;
  Blobs.clear();
  Blobs.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    std::string_view Blob;
    if (!takeBlob(Body, Blob))
      return false;
    Blobs.push_back(Blob);
  }
  return Body.empty();
}

/// Consume one encoded \ref WireLookup from the front of \p In.
inline bool takeWireLookup(std::string_view &In, WireLookup &R) {
  if (In.empty())
    return false;
  R.Present = In[0] != 0;
  In.remove_prefix(1);
  if (!R.Present) {
    R.Hash = Hash128();
    R.Count = 0;
    R.CanonicalBytes.clear();
    return true;
  }
  constexpr size_t HashBytes = 16;
  if (In.size() < HashBytes + 8)
    return false;
  iio::getHashLE(In.data(), R.Hash);
  R.Count = iio::getWordLE(In.data() + HashBytes, 8);
  In.remove_prefix(HashBytes + 8);
  std::string_view Blob;
  if (!takeBlob(In, Blob))
    return false;
  R.CanonicalBytes.assign(Blob);
  return true;
}

/// Decode a LookupBatch response body.
inline bool parseBatchResponse(std::string_view Body,
                               std::vector<WireLookup> &Out) {
  if (Body.size() < 4)
    return false;
  uint64_t Count = iio::getWordLE(Body.data(), 4);
  Body.remove_prefix(4);
  if (Count > Body.size() + 1) // each entry costs >= 1 byte
    return false;
  Out.clear();
  Out.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    WireLookup R;
    if (!takeWireLookup(Body, R))
      return false;
    Out.push_back(std::move(R));
  }
  return Body.empty();
}

} // namespace hma::serve

#endif // HMA_SERVE_PROTOCOL_H
