//===- bench/fig4_collisions.cpp - Figure 4 / Appendix B collisions ----------===//
///
/// \file
/// Reproduces Figure 4 (Appendix B): the empirical number of 16-bit hash
/// collisions per 2^16 trials, for random expression pairs and for
/// adversarially constructed pairs (Appendix B.1), against
///
///   lower bound: 1 collision per 2^16 trials (perfect hash), and
///   upper bound: 10 * n       (Theorem 6.7 with b=16, |e1|=|e2|=n).
///
/// The algorithm runs at b=16 end to end; the adversarial pairs wrap two
/// inequivalent cores in identical layers, so an internal collision
/// propagates to the roots (this is why their curve grows with n).
///
/// Default trial counts are 1/16 of the paper's 10*2^16 per size and are
/// scaled up in the report; HMA_BENCH_FULL=1 runs the paper's counts.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ast/AlphaEquivalence.h"
#include "gen/RandomExpr.h"

using namespace hma;
using namespace hma::bench;

namespace {

struct Cell {
  uint64_t Collisions = 0;
  uint64_t Trials = 0;
  /// Collisions extrapolated to a 2^16-trial experiment.
  double perTwo16() const {
    return Trials ? double(Collisions) * double(1 << 16) / double(Trials)
                  : 0.0;
  }
};

Cell runRandom(uint32_t Size, uint64_t Trials, uint64_t Seed) {
  Cell C;
  Rng R(Seed);
  HashSchema Schema; // fixed hashing seed, fresh expressions per trial
  for (uint64_t T = 0; T != Trials; ++T) {
    ExprContext Ctx;
    const Expr *E1 = genBalanced(Ctx, R, Size);
    const Expr *E2 = genBalanced(Ctx, R, Size);
    if (alphaEquivalent(Ctx, E1, E2))
      continue; // equivalent pairs are not collisions; discard
    AlphaHasher<Hash16> H(Ctx, Schema);
    C.Collisions += H.hashRoot(E1) == H.hashRoot(E2);
    ++C.Trials;
  }
  return C;
}

Cell runAdversarial(uint32_t Size, uint64_t Trials, uint64_t Seed) {
  Cell C;
  Rng R(Seed);
  HashSchema Schema;
  for (uint64_t T = 0; T != Trials; ++T) {
    ExprContext Ctx;
    auto [E1, E2] = genAdversarialPair(Ctx, R, Size);
    AlphaHasher<Hash16> H(Ctx, Schema);
    C.Collisions += H.hashRoot(E1) == H.hashRoot(E2);
    ++C.Trials;
  }
  return C;
}

} // namespace

int main() {
  const uint64_t PaperTrials = 10ull << 16; // 10 * 2^16 per size
  const uint64_t Trials = fullMode() ? PaperTrials : PaperTrials / 64;

  std::printf("Figure 4 reproduction: 16-bit collisions per 2^16 trials "
              "(scaled from %llu trials per cell)\n\n",
              static_cast<unsigned long long>(Trials));
  std::printf("%8s  %14s  %14s  %14s  %14s\n", "n", "random", "adversarial",
              "lower bound", "upper bound");

  std::vector<uint32_t> Sizes = {128, 256, 512, 1024, 2048, 4096};
  for (uint32_t N : Sizes) {
    Cell Rand = runRandom(N, Trials, 9000 + N);
    Cell Adv = runAdversarial(N, Trials, 4000 + N);
    std::printf("%8u  %14.1f  %14.1f  %14.1f  %14.1f\n", N,
                Rand.perTwo16(), Adv.perTwo16(), 1.0, 10.0 * N);
    std::fflush(stdout);
    std::printf("CSV,fig4,random,%u,%.3f\n", N, Rand.perTwo16());
    std::printf("CSV,fig4,adversarial,%u,%.3f\n", N, Adv.perTwo16());
  }

  std::printf("\nexpected shape: random stays near the perfect-hash line "
              "(~1); adversarial grows with n but remains well below the "
              "Theorem 6.7 bound (10n).\n");
  std::printf("note: with reduced trial counts the random row is a noisy "
              "estimate of a ~1-per-2^16 event; run HMA_BENCH_FULL=1 for "
              "paper-fidelity counts.\n");
  return 0;
}
