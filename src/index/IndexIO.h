//===- index/IndexIO.h - HMAI on-disk index format --------------------------===//
///
/// \file
/// A persistent, mmap-friendly on-disk format for \ref AlphaHashIndex.
///
/// The hash-then-verify design makes an index fully determined by its
/// class table -- (alpha-hash, canonical `ast/Serialize` bytes, member
/// count) -- which is exactly what \ref ShardStore retains in memory.
/// `HMAI` is that table laid out for reopening *without re-hashing
/// anything* and for a future reader to serve lookups straight from an
/// mmap without materializing classes:
///
///   header    80 bytes (v1) / 96 bytes (v2), fixed-width little-endian:
///               magic       "HMAI"
///               version     u32 (1 or 2)
///               seed        u64 hash-schema seed
///               hash bits   u32 (16 / 32 / 64 / 128)
///               shards      u32 (power of two)
///               classes     u64 total class count
///               stats       6 x u64 (IndexStats, field order)
///             v2 appends two fields describing the probe sidecar:
///               sidecar offset  u64 absolute file offset
///               sidecar length  u64 (== file size - sidecar offset)
///   directory shards x { u64 table offset, u64 class count }
///   tables    per shard: classes x fixed-width records, sorted by
///             (hash, canonical bytes):
///               hash        bits/8 bytes, little-endian words (lo first)
///               offset      u64 absolute file offset of the blob
///               length      u64 blob length in bytes
///               count       u64 member count
///   bytes     the canonical blobs, back to back
///   sidecar   (v2 only) per shard, in shard order:
///               eytz hashes classes x bits/8 bytes -- the shard's sorted
///                           hashes rewritten in Eytzinger (BFS) order:
///                           slot k (1-indexed, stored at byte (k-1) *
///                           bits/8) holds the hash whose sorted rank is
///                           the in-order position of node k in a
///                           complete binary tree rooted at slot 1
///               eytz ranks  classes x u32 -- slot k's sorted rank, so a
///                           branchless BFS descent lands back on the
///                           record table without an arithmetic decode
///
/// Every record is fixed-width and every shard table is sorted, so a
/// reader that mmaps the file can binary-search a shard's table by hash
/// and follow (offset, length) to the candidate bytes -- decode-on-demand
/// for the exact-verify fallback, nothing else touched. Offsets are
/// absolute, so a table entry is meaningful without any rebasing.
///
/// The v2 sidecar is derived data: it is a pure function of the shard
/// tables (so a deterministic save stays deterministic) and exists only
/// to let \ref MappedIndex probe a shard with the branchless Eytzinger
/// engine instead of a scalar binary search. Readers that ignore it lose
/// nothing but speed; the eager loader validates it and drops it.
///
/// Versioning: the magic and the version field are stable forever; all
/// layout after them is owned by the version. Readers must reject
/// versions (and hash widths) they do not understand; this reader speaks
/// v1 and v2, and \ref MappedIndex falls back to the scalar probe on v1
/// files (no sidecar). The seed and bit width identify the hash function
/// family: two files are hash-compatible iff both match (surface-checked
/// by `hma index stats` / `hma index open`).
///
//===----------------------------------------------------------------------===//

#ifndef HMA_INDEX_INDEXIO_H
#define HMA_INDEX_INDEXIO_H

#include "index/AlphaHashIndex.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/HashCode.h"
#include "support/IoEnv.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hma {

/// Decoded `HMAI` header: everything needed to check compatibility or
/// report on a file without loading its classes.
struct IndexFileInfo {
  uint32_t Version = 0;
  uint64_t Seed = 0;
  unsigned HashBits = 0;
  unsigned Shards = 0;
  uint64_t NumClasses = 0;
  IndexStats Stats;
  uint64_t SidecarOffset = 0; ///< v2: absolute offset of the probe sidecar.
  uint64_t SidecarLength = 0; ///< v2: sidecar bytes (to end of file).

  /// True if the image carries the Eytzinger probe sidecar.
  bool hasSidecar() const { return Version >= 2; }
};

/// True if \p Bytes starts with the index magic "HMAI".
bool isIndexFile(std::string_view Bytes);

/// Outcome of loading an index: the reopened index or a diagnostic.
template <typename H> struct IndexLoadResult {
  std::unique_ptr<AlphaHashIndex<H>> Index;
  std::string Error;   ///< Empty on success.
  size_t ErrorPos = 0; ///< Byte offset of the failure.

  bool ok() const { return Index != nullptr; }
};

/// Decode and validate the header only (magic, version, widths, and that
/// the directory/tables/bytes regions lie within the file). On failure
/// returns false with \p Error / \p ErrorPos set (if non-null).
bool probeIndexBytes(std::string_view Bytes, IndexFileInfo &Info,
                     std::string *Error = nullptr, size_t *ErrorPos = nullptr);

/// Read a whole file (binary) into \p Out. All I/O runs through \p Env
/// (the production passthrough by default).
bool readFileBytes(const std::string &Path, std::string &Out,
                   std::string *Error, IoEnv &Env = IoEnv::system());

/// Write \p Bytes to \p Path atomically-ish: a sibling `.tmp` file is
/// written, fsynced and renamed over \p Path (parent directory synced
/// after), so a crash mid-write never leaves a torn file behind the
/// original name. On *any* failure the partial `.tmp` is unlinked and
/// \p Error carries the errno text. All I/O runs through \p Env, which
/// is how the crash matrix injects ENOSPC/EIO/power-cut at every call.
bool writeFileReplacing(const std::string &Path, std::string_view Bytes,
                        std::string *Error, IoEnv &Env = IoEnv::system());

namespace iio {

constexpr char Magic[4] = {'H', 'M', 'A', 'I'};
constexpr uint32_t MinVersion = 1; ///< Oldest version this reader accepts.
constexpr uint32_t Version = 2;    ///< Version the writer emits by default.
constexpr size_t HeaderSize = 80;   ///< v1 header; also the v2 header prefix.
constexpr size_t HeaderSizeV2 = 96; ///< v1 header + sidecar offset/length.
constexpr size_t DirEntrySize = 16;
constexpr size_t RankEntrySize = 4; ///< Sidecar rank width (u32).

/// Directory start for a given header version.
constexpr size_t headerSize(uint32_t V) {
  return V >= 2 ? HeaderSizeV2 : HeaderSize;
}

/// Bytes one class contributes to the sidecar (BFS hash + sorted rank).
constexpr size_t sidecarEntrySize(unsigned HashBits) {
  return HashBits / 8 + RankEntrySize;
}

void putWordLE(std::string &Out, uint64_t V, unsigned NumBytes);
uint64_t getWordLE(const char *P, unsigned NumBytes);

inline void putHashLE(std::string &Out, Hash16 V) { putWordLE(Out, V.V, 2); }
inline void putHashLE(std::string &Out, Hash32 V) { putWordLE(Out, V.V, 4); }
inline void putHashLE(std::string &Out, Hash64 V) { putWordLE(Out, V.V, 8); }
inline void putHashLE(std::string &Out, Hash128 V) {
  putWordLE(Out, V.Lo, 8);
  putWordLE(Out, V.Hi, 8);
}
inline void getHashLE(const char *P, Hash16 &V) {
  V = Hash16(static_cast<uint16_t>(getWordLE(P, 2)));
}
inline void getHashLE(const char *P, Hash32 &V) {
  V = Hash32(static_cast<uint32_t>(getWordLE(P, 4)));
}
inline void getHashLE(const char *P, Hash64 &V) { V = Hash64(getWordLE(P, 8)); }
inline void getHashLE(const char *P, Hash128 &V) {
  V = Hash128(getWordLE(P + 8, 8), getWordLE(P, 8));
}

std::string encodeHeader(const IndexFileInfo &Info);

template <typename H> constexpr size_t recordSize() {
  return HashWidth<H>::Bits / 8 + 24; // hash + offset + length + count
}

/// Reject a file whose hash width does not match the reader's
/// instantiation. Returns the diagnostic (empty on a match); the
/// position is always byte 16 (the header's hash-bits field). Shared by
/// the eager loader and \ref MappedIndex::open so their error surfaces
/// cannot drift.
template <typename H> std::string checkWidth(const IndexFileInfo &Info) {
  if (Info.HashBits == HashWidth<H>::Bits)
    return std::string();
  return "index file is b=" + std::to_string(Info.HashBits) +
         " but the reader is instantiated at b=" +
         std::to_string(HashWidth<H>::Bits);
}
constexpr size_t WidthErrorPos = 16;

/// One decoded shard-table record.
template <typename H> struct Record {
  H Hash{};
  uint64_t Offset = 0; ///< Absolute file offset of the blob.
  uint64_t Length = 0; ///< Blob length in bytes.
  uint64_t Count = 0;  ///< Class member count.
};

template <typename H> Record<H> readRecord(const char *Rec) {
  constexpr unsigned HashBytes = HashWidth<H>::Bits / 8;
  Record<H> R;
  getHashLE(Rec, R.Hash);
  R.Offset = getWordLE(Rec + HashBytes, 8);
  R.Length = getWordLE(Rec + HashBytes + 8, 8);
  R.Count = getWordLE(Rec + HashBytes + 16, 8);
  return R;
}

/// The non-hash fields of a record. The duplicate-hash scan compares
/// hashes first (via the mapped hash column) and only then needs the
/// blob range and count; decoding them separately means each field is
/// read exactly once per candidate instead of re-decoding the whole
/// record.
struct RecordTail {
  uint64_t Offset = 0;
  uint64_t Length = 0;
  uint64_t Count = 0;
};

template <typename H> RecordTail readRecordTail(const char *Rec) {
  constexpr unsigned HashBytes = HashWidth<H>::Bits / 8;
  RecordTail T;
  T.Offset = getWordLE(Rec + HashBytes, 8);
  T.Length = getWordLE(Rec + HashBytes + 8, 8);
  T.Count = getWordLE(Rec + HashBytes + 16, 8);
  return T;
}

/// Sorted rank of every Eytzinger slot for a table of \p Count records:
/// element k-1 is the in-order position of node k in the complete binary
/// tree rooted at slot 1 (the order a branchless BFS descent compares
/// against). Pure layout function -- the writer emits it, validators
/// recompute it.
std::vector<uint32_t> eytzingerRanks(uint64_t Count);

/// Validate one record against the image envelope and its shard's sort
/// order: the blob range must lie inside the bytes region -- an offset
/// below \p BytesStart aliases the header/directory/tables, one ending
/// past \p BytesEnd runs off the file (v1) or into the sidecar (v2);
/// both are in-file but never something the writer emits -- and hashes
/// must be non-decreasing. Returns the diagnostic, empty on success.
/// Shared by the eager loader and \ref MappedIndex::verify so the two
/// read paths cannot drift apart on what counts as a well-formed file
/// (their acceptance parity is pinned by tests/index_io_test.cpp).
template <typename H>
std::string checkRecord(const Record<H> &R, H PrevHash, bool First,
                        uint64_t BytesEnd, uint64_t BytesStart, unsigned Shard,
                        uint64_t I) {
  auto At = [&](const char *What) {
    return "shard " + std::to_string(Shard) + " record " + std::to_string(I) +
           ": " + What;
  };
  if (R.Offset > BytesEnd || R.Length > BytesEnd - R.Offset)
    return At("blob overruns the bytes region");
  if (R.Offset < BytesStart)
    return At("blob offset points outside the bytes region");
  if (!First && R.Hash < PrevHash)
    return "shard " + std::to_string(Shard) + " table is not sorted by hash";
  return std::string();
}

/// Validate one shard's sidecar block against its record table: slot k's
/// rank must be the Eytzinger in-order position and slot k's hash must
/// equal the table hash at that rank. \p HashAt maps a sorted rank to
/// the shard's record hash. Shared by the eager loader and \ref
/// MappedIndex::verify (same acceptance-parity contract as checkRecord).
template <typename H, typename HashAtFn>
std::string checkSidecarShard(const char *Eytz, const char *Ranks,
                              uint64_t Count, HashAtFn &&HashAt,
                              unsigned Shard) {
  constexpr unsigned HashBytes = HashWidth<H>::Bits / 8;
  const std::vector<uint32_t> Want = eytzingerRanks(Count);
  for (uint64_t K = 0; K != Count; ++K) {
    const uint64_t Rank = getWordLE(Ranks + K * RankEntrySize, RankEntrySize);
    if (Rank != Want[K])
      return "shard " + std::to_string(Shard) + " sidecar slot " +
             std::to_string(K + 1) + ": rank " + std::to_string(Rank) +
             " is not the Eytzinger in-order position " +
             std::to_string(Want[K]);
    H Got{};
    getHashLE(Eytz + K * HashBytes, Got);
    if (!(Got == HashAt(Rank)))
      return "shard " + std::to_string(Shard) + " sidecar slot " +
             std::to_string(K + 1) + ": hash does not match table rank " +
             std::to_string(Rank);
  }
  return std::string();
}

template <typename H>
IndexLoadResult<H> loadFail(std::string Error, size_t Pos) {
  IndexLoadResult<H> R;
  R.Error = std::move(Error);
  R.ErrorPos = Pos;
  return R;
}

} // namespace iio

/// Serialise \p Index to the `HMAI` byte format. The result is a
/// deterministic function of the index's class table, stats, shard count
/// and \p FormatVersion (canonical tie-breaks aside, the same corpus
/// yields the same file regardless of ingest thread count). The default
/// version writes the v2 probe sidecar; pass 1 for a sidecar-free image
/// older readers accept.
///
/// The index must be quiescent (no concurrent ingest) for the duration
/// of the call: the class table and the stats are read under separate
/// per-shard locks, so a save racing an insertBatch yields a loadable
/// image whose stats may not correspond to exactly the captured class
/// set.
///
/// \p StatsOverride, if non-null, is stamped into the header in place of
/// \ref AlphaHashIndex::stats. Segmented-index writers need this: a
/// delta segment's header must record the delta's contribution *to the
/// union* (reconciled against older segments -- see
/// index/SegmentCompactor.h), not the raw counters of the scratch index
/// the delta was staged in.
template <typename H>
std::string saveIndexBytes(const AlphaHashIndex<H> &Index,
                           uint32_t FormatVersion = iio::Version,
                           const IndexStats *StatsOverride = nullptr) {
  static const obs::Histogram SaveNs = obs::Histogram::get(
      "hma_index_save_ns", "Latency of serialising an index to HMAI, ns");
  static const obs::Counter SavedBytes = obs::Counter::get(
      "hma_index_saved_bytes_total", "HMAI image bytes produced by saves");
  obs::ScopedTrace Span("index_save", "io");
  obs::ScopedTimer Timer(SaveNs);
  using Summary = typename AlphaHashIndex<H>::ClassSummary;
  std::vector<Summary> Classes = Index.snapshot(); // sorted (hash, bytes)
  const unsigned Shards = Index.numShards();

  // Group into per-shard tables exactly as the live index stripes them;
  // the global sort order is preserved within each group.
  std::vector<std::vector<const Summary *>> PerShard(Shards);
  size_t TotalBlobBytes = 0;
  for (const Summary &C : Classes) {
    PerShard[Index.shardIndexFor(C.Hash)].push_back(&C);
    TotalBlobBytes += C.CanonicalBytes.size();
  }

  assert((FormatVersion == 1 || FormatVersion == 2) &&
         "writer speaks HMAI v1 and v2");
  IndexFileInfo Info;
  Info.Version = FormatVersion;
  Info.Seed = Index.schema().seed();
  Info.HashBits = HashWidth<H>::Bits;
  Info.Shards = Shards;
  Info.NumClasses = Classes.size();
  Info.Stats = StatsOverride ? *StatsOverride : Index.stats();

  const size_t RecSize = iio::recordSize<H>();
  const size_t DirStart = iio::headerSize(FormatVersion);
  const size_t TablesStart = DirStart + size_t(Shards) * iio::DirEntrySize;
  const size_t BytesStart = TablesStart + Classes.size() * RecSize;
  const size_t SidecarLength =
      Info.hasSidecar()
          ? Classes.size() * iio::sidecarEntrySize(HashWidth<H>::Bits)
          : 0;
  if (Info.hasSidecar()) {
    Info.SidecarOffset = BytesStart + TotalBlobBytes;
    Info.SidecarLength = SidecarLength;
  }

  std::string Out = iio::encodeHeader(Info);
  // The whole image, one allocation.
  Out.reserve(BytesStart + TotalBlobBytes + SidecarLength);

  // Directory.
  size_t TableOffset = TablesStart;
  for (unsigned S = 0; S != Shards; ++S) {
    iio::putWordLE(Out, TableOffset, 8);
    iio::putWordLE(Out, PerShard[S].size(), 8);
    TableOffset += PerShard[S].size() * RecSize;
  }

  // Tables (blob offsets assigned in table order).
  uint64_t BlobOffset = BytesStart;
  for (unsigned S = 0; S != Shards; ++S) {
    for (const Summary *C : PerShard[S]) {
      iio::putHashLE(Out, C->Hash);
      iio::putWordLE(Out, BlobOffset, 8);
      iio::putWordLE(Out, C->CanonicalBytes.size(), 8);
      iio::putWordLE(Out, C->Count, 8);
      BlobOffset += C->CanonicalBytes.size();
    }
  }

  // Bytes region.
  for (unsigned S = 0; S != Shards; ++S)
    for (const Summary *C : PerShard[S])
      Out += C->CanonicalBytes;

  // Probe sidecar (v2): per shard, the hashes rewritten in Eytzinger
  // (BFS) order followed by each slot's sorted rank. Derived purely from
  // the (already deterministic) shard tables.
  if (Info.hasSidecar()) {
    for (unsigned S = 0; S != Shards; ++S) {
      const std::vector<uint32_t> Ranks =
          iio::eytzingerRanks(PerShard[S].size());
      for (uint32_t Rank : Ranks)
        iio::putHashLE(Out, PerShard[S][Rank]->Hash);
      for (uint32_t Rank : Ranks)
        iio::putWordLE(Out, Rank, iio::RankEntrySize);
    }
    assert(Out.size() == Info.SidecarOffset + Info.SidecarLength &&
           "sidecar layout drifted");
  }
  SavedBytes.add(Out.size());
  return Out;
}

/// Reconstruct an index from `HMAI` bytes. Classes, counts and stats are
/// restored exactly as saved; no expression is decoded or re-hashed (the
/// fallback decodes on demand at query time). \p OverrideShards != 0
/// re-stripes the classes over a different shard count (placement is a
/// pure function of the hash, so this is always safe); 0 keeps the
/// file's.
template <typename H>
IndexLoadResult<H> loadIndexBytes(std::string_view Bytes,
                                  unsigned OverrideShards = 0) {
  static const obs::Histogram LoadNs = obs::Histogram::get(
      "hma_index_load_ns",
      "Latency of materializing a live index from HMAI bytes (validation "
      "included), ns");
  static const obs::Counter LoadedBytes = obs::Counter::get(
      "hma_index_loaded_bytes_total", "HMAI image bytes consumed by loads");
  obs::ScopedTrace Span("index_load", "io",
                        static_cast<int64_t>(Bytes.size()));
  obs::ScopedTimer Timer(LoadNs);
  LoadedBytes.add(Bytes.size());
  IndexFileInfo Info;
  std::string Error;
  size_t ErrorPos = 0;
  if (!probeIndexBytes(Bytes, Info, &Error, &ErrorPos))
    return iio::loadFail<H>(std::move(Error), ErrorPos);
  if (std::string WidthError = iio::checkWidth<H>(Info); !WidthError.empty())
    return iio::loadFail<H>(std::move(WidthError), iio::WidthErrorPos);

  IndexLoadResult<H> R;
  R.Index = std::make_unique<AlphaHashIndex<H>>(typename AlphaHashIndex<
      H>::Options{OverrideShards ? OverrideShards : Info.Shards, Info.Seed});

  const size_t RecSize = iio::recordSize<H>();
  const size_t DirStart = iio::headerSize(Info.Version);
  const uint64_t BytesStart = DirStart +
                              uint64_t(Info.Shards) * iio::DirEntrySize +
                              Info.NumClasses * RecSize;
  // Blobs may run to the end of the file (v1) or only up to the probe
  // sidecar (v2).
  const uint64_t BytesEnd =
      Info.hasSidecar() ? Info.SidecarOffset : Bytes.size();
  uint64_t Restored = 0;
  uint64_t SidecarPos = Info.SidecarOffset; // walks per-shard blocks (v2)
  std::vector<H> ShardHashes;
  for (unsigned S = 0; S != Info.Shards; ++S) {
    const char *Dir = Bytes.data() + DirStart + S * iio::DirEntrySize;
    const uint64_t TableOffset = iio::getWordLE(Dir, 8);
    const uint64_t Count = iio::getWordLE(Dir + 8, 8);
    H Prev{};
    ShardHashes.clear();
    for (uint64_t I = 0; I != Count; ++I) {
      const size_t RecPos = TableOffset + I * RecSize;
      iio::Record<H> Rec = iio::readRecord<H>(Bytes.data() + RecPos);
      std::string RecError =
          iio::checkRecord(Rec, Prev, I == 0, BytesEnd, BytesStart, S, I);
      if (!RecError.empty())
        return iio::loadFail<H>(std::move(RecError), RecPos);
      Prev = Rec.Hash;
      if (Info.hasSidecar())
        ShardHashes.push_back(Rec.Hash);
      R.Index->restoreClass(Rec.Hash,
                            std::string(Bytes.substr(Rec.Offset, Rec.Length)),
                            Rec.Count);
      ++Restored;
    }
    if (Info.hasSidecar()) {
      // The sidecar is derived data the loader drops, but a corrupt
      // block must still be rejected so acceptance parity with
      // MappedIndex::open + verify holds.
      const char *Eytz = Bytes.data() + SidecarPos;
      const char *Ranks = Eytz + Count * (HashWidth<H>::Bits / 8);
      std::string SidecarError = iio::checkSidecarShard<H>(
          Eytz, Ranks, Count,
          [&](uint64_t Rank) { return ShardHashes[Rank]; }, S);
      if (!SidecarError.empty())
        return iio::loadFail<H>(std::move(SidecarError), SidecarPos);
      SidecarPos += Count * iio::sidecarEntrySize(HashWidth<H>::Bits);
    }
  }
  if (Restored != Info.NumClasses) {
    R.Index.reset();
    return iio::loadFail<H>("header declares " +
                                std::to_string(Info.NumClasses) +
                                " classes but tables hold " +
                                std::to_string(Restored),
                            24);
  }
  R.Index->restoreStats(Info.Stats);
  return R;
}

/// Write \p Index to \p Path (via a sibling temporary file renamed into
/// place, so a crash mid-write never leaves a torn index). Returns false
/// with \p Error set (errno text included) on I/O failure; the partial
/// `.tmp` never survives a failure.
template <typename H>
bool saveIndexFile(const AlphaHashIndex<H> &Index, const std::string &Path,
                   std::string *Error = nullptr,
                   IoEnv &Env = IoEnv::system()) {
  return writeFileReplacing(Path, saveIndexBytes(Index), Error, Env);
}

/// Read \p Path and reconstruct the index it holds.
template <typename H>
IndexLoadResult<H> loadIndexFile(const std::string &Path,
                                 unsigned OverrideShards = 0) {
  std::string Bytes;
  std::string Error;
  if (!readFileBytes(Path, Bytes, &Error))
    return iio::loadFail<H>(std::move(Error), 0);
  return loadIndexBytes<H>(Bytes, OverrideShards);
}

} // namespace hma

#endif // HMA_INDEX_INDEXIO_H
