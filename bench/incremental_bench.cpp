//===- bench/incremental_bench.cpp - Section 6.3 incrementality cost ----------===//
///
/// \file
/// Measures the claim of Section 6.3: after rewriting a subtree at depth
/// h, incremental rehashing costs O(min(h^2 + h*f, n log^2 n)) -- far
/// below a from-scratch rehash when the tree is reasonably balanced
/// (O((log n)^2) per rewrite).
///
/// For each expression size, applies a batch of random small rewrites
/// through the IncrementalHasher and compares the average per-rewrite
/// time with a full AlphaHasher rehash of the whole tree.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/IncrementalHasher.h"
#include "gen/RandomExpr.h"

using namespace hma;
using namespace hma::bench;

int main() {
  std::printf("Section 6.3 reproduction: incremental rehash vs full "
              "rehash per rewrite\n\n");
  std::printf("%10s  %14s  %14s  %10s  %14s\n", "n", "incremental",
              "full rehash", "speedup", "spine nodes");

  std::vector<uint32_t> Sizes = {1001, 10001, 100001};
  if (fullMode())
    Sizes.push_back(1000001);

  for (uint32_t N : Sizes) {
    ExprContext Ctx;
    Rng R(1111 + N);
    const Expr *Root = genBalanced(Ctx, R, N);

    double TFull = timeMedian([&] {
      AlphaHasher<Hash128> H(Ctx);
      H.hashRoot(Root);
    });

    IncrementalHasher<Hash128> Inc(Ctx, Root);
    const int Rewrites = 50;
    uint64_t SpineTotal = 0;
    double TIncTotal = 0;
    for (int I = 0; I != Rewrites; ++I) {
      // Site selection and replacement construction are the rewriting
      // pass's own cost, not the hasher's: keep them outside the timer.
      const Expr *Site = pickRandomNode(R, Inc.root());
      const Expr *Replacement = genArithmetic(Ctx, R, 7);
      TIncTotal += timeOnce([&] { Inc.replaceSubtree(Site, Replacement); });
      SpineTotal += Inc.lastStats().PathNodesRehashed;
    }
    double TInc = TIncTotal / Rewrites;

    std::printf("%10u  %14s  %14s  %9.1fx  %14.1f\n", N,
                fmtSeconds(TInc).c_str(), fmtSeconds(TFull).c_str(),
                TFull / TInc, double(SpineTotal) / Rewrites);
    std::fflush(stdout);
    std::printf("CSV,incremental,%u,%.9f,%.9f,%.1f\n", N, TInc, TFull,
                double(SpineTotal) / Rewrites);
  }

  std::printf("\nexpected: per-rewrite cost grows ~polylog(n) (spine "
              "length ~ log n on balanced trees), so the speedup over "
              "full rehashing widens with n.\n");
  return 0;
}
