//===- adt/PersistentMap.h - Persistent (path-copying) AVL map ------------===//
///
/// \file
/// An immutable ordered map with O(log n) functional update.
///
/// Haskell's `Data.Map` -- which the paper's reference implementation uses
/// -- is persistent: "updating" a map returns a new version and leaves the
/// old one intact, sharing all untouched structure. Two parts of this
/// library need that behaviour and cannot use the mutable \ref AvlMap:
///
///  - the incremental hasher (Section 6.3), which must retain every
///    expression node's variable map so that a rewrite can re-merge
///    ancestor maps without recomputing the whole tree; and
///  - scoped environments in the uniquifier / alpha-equivalence checker,
///    where entering a binder extends the environment and leaving it must
///    restore the previous version in O(1).
///
/// Nodes are allocated from an \ref Arena and never freed individually;
/// all versions share the arena's lifetime. A map value is just a root
/// pointer plus an arena pointer and is freely copyable (O(1)).
///
//===----------------------------------------------------------------------===//

#ifndef HMA_ADT_PERSISTENTMAP_H
#define HMA_ADT_PERSISTENTMAP_H

#include "support/Arena.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>

namespace hma {

/// Immutable AVL-balanced ordered map from \p K to \p V with persistent
/// (path-copying) updates.
template <typename K, typename V> class PersistentMap {
  struct Node {
    K Key;
    V Val;
    const Node *L;
    const Node *R;
    uint32_t Count; ///< Number of entries in this subtree.
    uint8_t H;      ///< AVL height (leaf = 1).
  };
  static_assert(std::is_trivially_destructible_v<K> &&
                    std::is_trivially_destructible_v<V>,
                "PersistentMap nodes live in an arena");

public:
  /// An empty map allocating from \p A. All maps derived from this one
  /// share the arena.
  explicit PersistentMap(Arena &A) : A(&A), Root(nullptr) {}

  PersistentMap(const PersistentMap &) = default;
  PersistentMap &operator=(const PersistentMap &) = default;

  bool empty() const { return Root == nullptr; }
  size_t size() const { return count(Root); }

  /// Find the value for \p Key, or null. The pointer stays valid for the
  /// arena's lifetime (nodes are immutable).
  const V *find(const K &Key) const {
    const Node *N = Root;
    while (N) {
      if (Key < N->Key)
        N = N->L;
      else if (N->Key < Key)
        N = N->R;
      else
        return &N->Val;
    }
    return nullptr;
  }

  bool contains(const K &Key) const { return find(Key) != nullptr; }

  /// Return a new map in which \p Key maps to `MakeVal(existing-or-null)`.
  template <typename F> PersistentMap alter(const K &Key, F &&MakeVal) const {
    return PersistentMap(*A, alterRec(Root, Key, MakeVal));
  }

  /// Return a new map with \p Key set to \p Val.
  PersistentMap insert(const K &Key, const V &Val) const {
    return alter(Key, [&](const V *) { return Val; });
  }

  /// Return a new map without \p Key; also reports the removed value.
  /// This is `removeFromVM` in persistent form.
  PersistentMap remove(const K &Key, std::optional<V> *RemovedOut = nullptr)
      const {
    std::optional<V> Removed;
    const Node *NewRoot = removeRec(Root, Key, Removed);
    if (RemovedOut)
      *RemovedOut = Removed;
    return PersistentMap(*A, Removed ? NewRoot : Root);
  }

  /// Visit all entries in ascending key order.
  template <typename F> void forEach(F &&Fn) const {
    const Node *Stack[MaxHeight];
    unsigned Top = 0;
    const Node *N = Root;
    while (N || Top) {
      while (N) {
        assert(Top < MaxHeight && "AVL height invariant violated");
        Stack[Top++] = N;
        N = N->L;
      }
      N = Stack[--Top];
      Fn(N->Key, N->Val);
      N = N->R;
    }
  }

  /// Structural equality of contents (same keys mapping to same values).
  friend bool operator==(const PersistentMap &A, const PersistentMap &B) {
    if (A.size() != B.size())
      return false;
    bool Equal = true;
    A.forEach([&](const K &Key, const V &Val) {
      if (!Equal)
        return;
      const V *Other = B.find(Key);
      if (!Other || !(*Other == Val))
        Equal = false;
    });
    return Equal;
  }

  /// Validate AVL and size invariants (test support).
  bool checkInvariants() const {
    bool Ok = true;
    checkRec(Root, nullptr, nullptr, Ok);
    return Ok;
  }

private:
  static constexpr unsigned MaxHeight = 96;

  PersistentMap(Arena &A, const Node *Root) : A(&A), Root(Root) {}

  static uint32_t count(const Node *N) { return N ? N->Count : 0; }
  static int height(const Node *N) { return N ? N->H : 0; }

  const Node *make(const K &Key, const V &Val, const Node *L,
                   const Node *R) const {
    Node *N = static_cast<Node *>(A->allocate(sizeof(Node), alignof(Node)));
    N->Key = Key;
    N->Val = Val;
    N->L = L;
    N->R = R;
    N->Count = 1 + count(L) + count(R);
    N->H = static_cast<uint8_t>(1 + std::max(height(L), height(R)));
    return N;
  }

  const Node *rotateRight(const Node *Y) const {
    const Node *X = Y->L;
    return make(X->Key, X->Val, X->L, make(Y->Key, Y->Val, X->R, Y->R));
  }
  const Node *rotateLeft(const Node *X) const {
    const Node *Y = X->R;
    return make(Y->Key, Y->Val, make(X->Key, X->Val, X->L, Y->L), Y->R);
  }

  const Node *rebalance(const Node *N) const {
    int B = height(N->L) - height(N->R);
    if (B > 1) {
      if (height(N->L->L) < height(N->L->R))
        N = make(N->Key, N->Val, rotateLeft(N->L), N->R);
      return rotateRight(N);
    }
    if (B < -1) {
      if (height(N->R->R) < height(N->R->L))
        N = make(N->Key, N->Val, N->L, rotateRight(N->R));
      return rotateLeft(N);
    }
    return N;
  }

  template <typename F>
  const Node *alterRec(const Node *N, const K &Key, F &MakeVal) const {
    if (!N)
      return make(Key, MakeVal(static_cast<const V *>(nullptr)), nullptr,
                  nullptr);
    if (Key < N->Key)
      return rebalance(
          make(N->Key, N->Val, alterRec(N->L, Key, MakeVal), N->R));
    if (N->Key < Key)
      return rebalance(
          make(N->Key, N->Val, N->L, alterRec(N->R, Key, MakeVal)));
    return make(N->Key, MakeVal(&N->Val), N->L, N->R);
  }

  const Node *removeRec(const Node *N, const K &Key,
                        std::optional<V> &Removed) const {
    if (!N)
      return nullptr;
    if (Key < N->Key) {
      const Node *L = removeRec(N->L, Key, Removed);
      return Removed ? rebalance(make(N->Key, N->Val, L, N->R)) : N;
    }
    if (N->Key < Key) {
      const Node *R = removeRec(N->R, Key, Removed);
      return Removed ? rebalance(make(N->Key, N->Val, N->L, R)) : N;
    }
    Removed = N->Val;
    if (!N->L)
      return N->R;
    if (!N->R)
      return N->L;
    // Two children: splice in the in-order successor.
    const Node *Succ = N->R;
    while (Succ->L)
      Succ = Succ->L;
    std::optional<V> Dummy;
    const Node *R = removeRec(N->R, Succ->Key, Dummy);
    return rebalance(make(Succ->Key, Succ->Val, N->L, R));
  }

  void checkRec(const Node *N, const K *Lo, const K *Hi, bool &Ok) const {
    if (!N)
      return;
    if (Lo && !(*Lo < N->Key))
      Ok = false;
    if (Hi && !(N->Key < *Hi))
      Ok = false;
    if (N->H != 1 + std::max(height(N->L), height(N->R)))
      Ok = false;
    if (N->Count != 1 + count(N->L) + count(N->R))
      Ok = false;
    int B = height(N->L) - height(N->R);
    if (B < -1 || B > 1)
      Ok = false;
    checkRec(N->L, Lo, &N->Key, Ok);
    checkRec(N->R, &N->Key, Hi, Ok);
  }

  Arena *A;
  const Node *Root;
};

} // namespace hma

#endif // HMA_ADT_PERSISTENTMAP_H
