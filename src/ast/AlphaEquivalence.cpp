//===- ast/AlphaEquivalence.cpp - Reference alpha-equivalence ---------------===//
///
/// \file
/// Simultaneous traversal with per-side scoped binder environments.
///
//===----------------------------------------------------------------------===//

#include "ast/AlphaEquivalence.h"

#include "adt/PersistentMap.h"

#include <vector>

using namespace hma;

bool hma::alphaEquivalent(const ExprContext &CtxA, const Expr *A,
                          const ExprContext &CtxB, const Expr *B) {
  if (A == B && &CtxA == &CtxB)
    return true;
  if (!A || !B)
    return false;

  // Environments map a bound name to the de Bruijn *level* of its binder
  // along the current path; two bound occurrences correspond iff their
  // binders are at the same level.
  Arena EnvArena;
  using Env = PersistentMap<Name, uint32_t>;

  struct Task {
    const Expr *A;
    const Expr *B;
    Env EnvA;
    Env EnvB;
    uint32_t Level;
  };
  std::vector<Task> Work;
  Work.push_back({A, B, Env(EnvArena), Env(EnvArena), 0});

  while (!Work.empty()) {
    Task T = Work.back();
    Work.pop_back();

    if (T.A->kind() != T.B->kind())
      return false;
    // Cheap pruning: alpha-equivalent trees have identical shapes.
    if (T.A->treeSize() != T.B->treeSize())
      return false;

    switch (T.A->kind()) {
    case ExprKind::Var: {
      const uint32_t *LA = T.EnvA.find(T.A->varName());
      const uint32_t *LB = T.EnvB.find(T.B->varName());
      if (LA || LB) {
        // At least one side is bound: both must be, at the same level.
        if (!LA || !LB || *LA != *LB)
          return false;
        break;
      }
      // Both free: compare spellings (contexts may differ).
      if (CtxA.names().spelling(T.A->varName()) !=
          CtxB.names().spelling(T.B->varName()))
        return false;
      break;
    }
    case ExprKind::Const:
      if (T.A->constValue() != T.B->constValue())
        return false;
      break;
    case ExprKind::Lam:
      Work.push_back({T.A->lamBody(), T.B->lamBody(),
                      T.EnvA.insert(T.A->lamBinder(), T.Level),
                      T.EnvB.insert(T.B->lamBinder(), T.Level), T.Level + 1});
      break;
    case ExprKind::App:
      Work.push_back({T.A->appFun(), T.B->appFun(), T.EnvA, T.EnvB, T.Level});
      Work.push_back({T.A->appArg(), T.B->appArg(), T.EnvA, T.EnvB, T.Level});
      break;
    case ExprKind::Let:
      // The bound expression is outside the binder's scope.
      Work.push_back(
          {T.A->letBound(), T.B->letBound(), T.EnvA, T.EnvB, T.Level});
      Work.push_back({T.A->letBody(), T.B->letBody(),
                      T.EnvA.insert(T.A->letBinder(), T.Level),
                      T.EnvB.insert(T.B->letBinder(), T.Level), T.Level + 1});
      break;
    }
  }
  return true;
}
